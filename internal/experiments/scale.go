package experiments

import (
	"fmt"
	"runtime"
	"time"

	"edgesurgeon/internal/dnn"
	"edgesurgeon/internal/hardware"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
	"edgesurgeon/internal/surgery"
	"edgesurgeon/internal/workload"
)

// e21Config builds a planner-free heavy-traffic scenario: nUsers cycling
// over three device classes, assigned round-robin to nServers GPU servers,
// all running a light multi-exit MobileNetV2 plan. Records are dropped —
// this is the streaming-aggregation regime the sharded simulator exists
// for.
func e21Config(nUsers, nServers int, horizon float64, disc sim.Discipline) sim.Config {
	devices := []*hardware.Profile{mustDevice("rpi4"), mustDevice("phone-soc"), mustDevice("jetson-nano")}
	srv := mustDevice("edge-gpu-t4")
	m := dnn.MobileNetV2()
	cand := m.ExitCandidates()
	plan := surgery.Plan{Model: m, Exits: cand[1:3], Theta: 0.2, Partition: 3}

	cfg := sim.Config{Discipline: disc, Horizon: horizon}
	perServer := make([]int, nServers)
	for ui := 0; ui < nUsers; ui++ {
		perServer[ui%nServers]++
	}
	for s := 0; s < nServers; s++ {
		link := netmodel.NewStatic(fmt.Sprintf("ap%d", s), netmodel.Mbps(100), 0.004)
		cfg.Servers = append(cfg.Servers, sim.ServerConfig{Profile: srv, Link: link})
	}
	cfg.Users = make([]sim.UserConfig, 0, nUsers)
	for ui := 0; ui < nUsers; ui++ {
		s := ui % nServers
		share := 1 / float64(perServer[s])
		tasks := workload.Spec{
			User: ui, Rate: 0.2, Arrivals: workload.Poisson,
			Difficulty: workload.EasyBiased, Deadline: 0.5,
			Seed: int64(40000 + ui),
		}.Generate(horizon)
		cfg.Users = append(cfg.Users, sim.UserConfig{
			Plan: plan, Device: devices[ui%len(devices)], Server: s,
			ComputeShare: share, BandwidthShare: share,
			Tasks: tasks,
		})
	}
	return cfg
}

// e21Scale times each (size, discipline) arm sequentially (Parallelism=1)
// and sharded (Parallelism=GOMAXPROCS), verifies the two agree, and reports
// throughput. The sizes slice parameterizes small CI runs vs the full
// experiment.
func e21Scale(sizes []int, nServers int, horizon float64) (*Report, error) {
	r := &Report{
		ID: "E21", Artifact: "Scale study",
		Title: fmt.Sprintf("Sharded simulator throughput (%d servers, ProcessorSharing + DedicatedShares)", nServers),
	}
	t := stats.NewTable("Heavy-traffic events/sec, sequential vs sharded",
		"users", "discipline", "events", "seq(s)", "par(s)", "speedup", "events/sec", "allocs/event")
	cores := runtime.GOMAXPROCS(0)
	discNames := map[sim.Discipline]string{
		sim.ProcessorSharing: "processor-sharing",
		sim.DedicatedShares:  "dedicated-shares",
	}
	var bestEPS, bestSpeedup, lastAllocs float64
	for _, n := range sizes {
		for _, disc := range []sim.Discipline{sim.ProcessorSharing, sim.DedicatedShares} {
			cfg := e21Config(n, nServers, horizon, disc)

			cfg.Parallelism = 1
			t0 := time.Now()
			seqRes, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E21 seq n=%d: %w", n, err)
			}
			seqSec := time.Since(t0).Seconds()

			cfg.Parallelism = 0 // GOMAXPROCS
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t1 := time.Now()
			parRes, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("E21 par n=%d: %w", n, err)
			}
			parSec := time.Since(t1).Seconds()
			runtime.ReadMemStats(&m1)

			if seqRes.Events != parRes.Events ||
				seqRes.DeadlineRate() != parRes.DeadlineRate() ||
				seqRes.MeanAccuracy() != parRes.MeanAccuracy() {
				r.note("WARNING: sharded run diverged from sequential at n=%d %s", n, discNames[disc])
			}
			allocsPerEvent := float64(m1.Mallocs-m0.Mallocs) / float64(parRes.Events)
			speedup := seqSec / parSec
			eps := float64(parRes.Events) / parSec
			t.AddRow(n, discNames[disc], parRes.Events, seqSec, parSec, speedup, eps, allocsPerEvent)
			if eps > bestEPS {
				bestEPS = eps
			}
			if speedup > bestSpeedup {
				bestSpeedup = speedup
			}
			lastAllocs = allocsPerEvent
		}
	}
	r.Tables = append(r.Tables, t)
	r.metric("cores", float64(cores))
	r.metric("users_max", float64(sizes[len(sizes)-1]))
	r.metric("events_per_sec", bestEPS)
	r.metric("speedup_vs_sequential", bestSpeedup)
	r.metric("allocs_per_event", lastAllocs)
	r.note("best sharded throughput %.3g events/sec on %d core(s); best speedup %.2fx over Parallelism=1", bestEPS, cores, bestSpeedup)
	if cores < 8 {
		r.note("machine has %d core(s) < 8: the >=4x sharding speedup cannot manifest here; the differential tests still prove the parallel path is bit-identical", cores)
	}
	return r, nil
}

// E21ScaleThroughput regenerates the heavy-traffic scale study: 10k and
// 100k users across 32 edge servers, tracking events/sec of the sharded
// simulator against the sequential baseline.
func E21ScaleThroughput() (*Report, error) {
	return e21Scale([]int{10000, 100000}, 32, 20)
}
