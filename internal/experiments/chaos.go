package experiments

import (
	"fmt"
	"os"

	"edgesurgeon/internal/faults"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/serve"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
)

// E25ChaosRecovery replays one drifting-bandwidth telemetry trace through
// the crash-safe control plane four times: undisturbed, with the process
// killed and recovered from its snapshot+WAL store six times, with the
// planner throttled into replan-deadline aborts, and with a corrupt
// telemetry source striking until quarantined. The claims under test:
// recovery is exact (the crashing run's journal, metrics and final plan
// are byte-identical to the undisturbed run's), deadline aborts degrade to
// stale-plan serving instead of erroring, and quarantine contains a bad
// source without losing the stream.
func E25ChaosRecovery() (*Report, error) {
	r := &Report{
		ID: "E25", Artifact: "Robustness study",
		Title: "Chaos replay: crash/recover fidelity, replan deadlines, telemetry quarantine",
	}
	const (
		horizon = 240.0
		period  = 5.0
	)

	build := func() (*joint.Scenario, error) {
		sc := mixedScenario(8, 1.2, 0.35, 40)
		mk := func(name string, statesMbps []float64, dwell float64, rtt float64, seed int64) (netmodel.Link, error) {
			states := make([]float64, len(statesMbps))
			for i, v := range statesMbps {
				states[i] = netmodel.Mbps(v)
			}
			return netmodel.NewFading(name, netmodel.FadingConfig{
				States: states, MeanDwell: dwell, Horizon: horizon * 2, RTT: rtt, Seed: seed,
			})
		}
		var err error
		if sc.Servers[0].Link, err = mk("wifi-a", []float64{16, 28, 45}, 16, 0.004, 51); err != nil {
			return nil, err
		}
		if sc.Servers[1].Link, err = mk("wifi-b", []float64{10, 18, 30}, 18, 0.006, 52); err != nil {
			return nil, err
		}
		return sc, nil
	}
	sched := faults.MustNew(
		faults.Window{Kind: faults.ServerCrash, Server: 0, Start: 60, End: 100},
	)

	scTrace, err := build()
	if err != nil {
		return nil, err
	}
	servers := make([]sim.ServerConfig, len(scTrace.Servers))
	for i, s := range scTrace.Servers {
		servers[i] = sim.ServerConfig{Profile: s.Profile, Link: s.Link}
	}
	trace, err := sim.RecordTrace(servers, sched, horizon, period)
	if err != nil {
		return nil, err
	}

	policy := serve.Policy{
		RelChange: 0.2, MinInterval: 10, Budget: 4, Window: 60,
		ReplanDeadline: 2, PlannerOpsPerSec: 1000,
		QuarantineStrikes: 3, QuarantineProbation: 60,
	}

	// Per-arm chaos. The slow arm throttles to 0.001 over two windows (a
	// 2-op budget no replan fits); the corrupt arm mangles six samples from
	// one source (three strikes trip quarantine, the rest drop muted); the
	// crash arm kills the process after every eighth sample.
	var crashes []faults.ChaosEvent
	for at := 5; at < len(trace); at += 8 {
		crashes = append(crashes, faults.ChaosEvent{Kind: faults.CrashAfterSample, Sample: at})
	}
	slow := []faults.ChaosEvent{
		{Kind: faults.SlowPlanner, Sample: 8, Until: 16, Factor: 0.001},
		{Kind: faults.SlowPlanner, Sample: 30, Until: 38, Factor: 0.001},
	}
	var corrupt []faults.ChaosEvent
	for i, at := range []int{6, 7, 9, 10, 12, 14} {
		corrupt = append(corrupt, faults.ChaosEvent{
			Kind: faults.CorruptSample, Sample: at,
			Corrupt: faults.CorruptKind(i % 4),
		})
	}

	type armSpec struct {
		name   string
		events []faults.ChaosEvent
		store  bool
	}
	arms := []armSpec{
		{"calm", nil, false},
		{"crash", crashes, true},
		{"slow-planner", slow, false},
		{"corrupt", corrupt, false},
	}
	type armResult struct {
		res                   *serve.ChaosResult
		journal, metrics, fin string
		fulls, aborted        int64
		qdrops, quarantined   int64
	}
	results := make([]armResult, len(arms))
	err = forEachArm(len(arms), func(ai int) error {
		sc, err := build()
		if err != nil {
			return err
		}
		cfg := serve.Config{Scenario: sc, Policy: policy}
		if arms[ai].store {
			dir, err := os.MkdirTemp("", "e25-chaos-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			store, err := serve.OpenStore(dir)
			if err != nil {
				return err
			}
			cfg.Store = store
		}
		chaos, err := faults.NewChaos(arms[ai].events...)
		if err != nil {
			return err
		}
		res, err := serve.RunChaos(cfg, trace, chaos)
		if err != nil {
			return fmt.Errorf("%s: %w", arms[ai].name, err)
		}
		defer res.Runtime.Close()
		reg := res.Runtime.Metrics()
		results[ai] = armResult{
			res:         res,
			journal:     res.Runtime.Journal().String(),
			metrics:     reg.Text(),
			fin:         serve.EncodePlan(res.Runtime.Current()),
			fulls:       reg.Counter("serve.replans.full").Value(),
			aborted:     reg.Counter("serve.replans.aborted").Value(),
			qdrops:      reg.Counter("serve.quarantine.dropped").Value(),
			quarantined: reg.Counter("serve.quarantine.quarantined").Value(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	calm, crash, slowArm, corr := &results[0], &results[1], &results[2], &results[3]
	fidelity := 0.0
	if crash.journal == calm.journal && crash.metrics == calm.metrics && crash.fin == calm.fin {
		fidelity = 1
	}
	attempts := slowArm.fulls + slowArm.aborted
	deadlineHit := 0.0
	if attempts > 0 {
		deadlineHit = float64(slowArm.aborted) / float64(attempts)
	}

	t := stats.NewTable(fmt.Sprintf("Chaos replay over one %g s trace (%d samples)", horizon, len(trace)),
		"arm", "crashes", "full-replans", "deadline-aborts", "rejections", "quarantined", "muted-drops")
	for ai, res := range results {
		t.AddRow(arms[ai].name, float64(res.res.Crashes), float64(res.fulls), float64(res.aborted),
			float64(res.res.Rejections), float64(res.quarantined), float64(res.qdrops))
	}
	r.Tables = append(r.Tables, t)

	r.metric("E25.recovery_fidelity", fidelity)
	r.metric("E25.crashes", float64(crash.res.Crashes))
	r.metric("E25.deadline_hit_rate", deadlineHit)
	r.metric("E25.stale_serves", float64(slowArm.aborted))
	r.metric("E25.quarantine_drops", float64(corr.qdrops))

	r.note("recovery fidelity after %d kill/recover cycles: %.0f (1 = journal, metrics and final plan byte-identical to the undisturbed run)",
		crash.res.Crashes, fidelity)
	r.note("slow planner: %d of %d replan attempts hit the deadline and served the stale plan instead", slowArm.aborted, attempts)
	r.note("corrupt source: %d samples rejected, quarantined %d time(s), %d samples dropped while muted",
		corr.res.Rejections, corr.quarantined, corr.qdrops)
	if fidelity != 1 {
		r.note("WARNING: crash recovery diverged from the undisturbed run — the snapshot/WAL protocol is broken")
	}
	if crash.res.Crashes == 0 {
		r.note("WARNING: the crash arm never crashed; the chaos schedule is vacuous")
	}
	if slowArm.aborted == 0 {
		r.note("WARNING: the slow-planner arm never hit the replan deadline")
	}
	if corr.quarantined == 0 {
		r.note("WARNING: the corrupt arm never tripped quarantine")
	}
	return r, nil
}
