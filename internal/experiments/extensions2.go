package experiments

import (
	"fmt"

	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
)

// E17PriorityWeights regenerates the service-differentiation figure:
// two user classes share the cluster, gold users carrying 4x the weight of
// bronze users in the objective. The weighted allocation must buy gold
// users lower latency without starving bronze.
func E17PriorityWeights() (*Report, error) {
	r := &Report{
		ID: "E17", Artifact: "Figure 16 (extension)",
		Title: "Priority weights: gold (w=4) vs bronze (w=1) service differentiation",
	}
	sc := mixedScenario(12, 4, 0, 25)
	for i := range sc.Users {
		if i%2 == 0 {
			sc.Users[i].Weight = 4
			sc.Users[i].Name = fmt.Sprintf("gold%02d", i)
		} else {
			sc.Users[i].Weight = 1
			sc.Users[i].Name = fmt.Sprintf("bronze%02d", i)
		}
	}
	plan, res, err := joint.PlanAndSimulate(sc, &joint.Planner{}, simHorizon, sim.DedicatedShares)
	if err != nil {
		return nil, err
	}
	classMean := func(gold bool) (analytic, simulated float64) {
		var sumA, sumS float64
		var n int
		for i := range sc.Users {
			if (sc.Users[i].Weight == 4) != gold {
				continue
			}
			sumA += plan.Decisions[i].Latency()
			sumS += res.PerUser[i].Latency.Mean()
			n++
		}
		return sumA / float64(n), sumS / float64(n)
	}
	goldA, goldS := classMean(true)
	bronzeA, bronzeS := classMean(false)

	t := stats.NewTable("Class outcomes",
		"class", "exp-latency(ms)", "sim-mean(ms)", "sim-p95(ms)")
	p95 := func(gold bool) float64 {
		var s stats.Series
		for i := range res.Records {
			if (sc.Users[res.Records[i].User].Weight == 4) == gold {
				s.Add(res.Records[i].Latency)
			}
		}
		return s.P95()
	}
	t.AddRow("gold(w=4)", goldA*1000, goldS*1000, p95(true)*1000)
	t.AddRow("bronze(w=1)", bronzeA*1000, bronzeS*1000, p95(false)*1000)
	r.Tables = append(r.Tables, t)

	if goldA < bronzeA {
		r.note("gold expected latency %.1f ms < bronze %.1f ms: weights buy differentiated service", goldA*1000, bronzeA*1000)
	} else {
		r.note("WARNING: gold class not faster analytically (%.1f vs %.1f ms)", goldA*1000, bronzeA*1000)
	}
	if bronzeS > 0 && goldS > 0 {
		r.note("simulated class means: gold %.1f ms, bronze %.1f ms (ratio %.2f)", goldS*1000, bronzeS*1000, bronzeS/goldS)
	}
	return r, nil
}

// E18DisciplineSensitivity regenerates the robustness check for the GPS
// idealization: the same joint plan replayed under dedicated-share lanes,
// processor sharing and no-allocation FCFS. The strategy ordering must not
// depend on the service-discipline model.
func E18DisciplineSensitivity() (*Report, error) {
	r := &Report{
		ID: "E18", Artifact: "Figure 17 (extension)",
		Title: "Service-discipline sensitivity of the simulated results",
	}
	sc := mixedScenario(12, 3, 0.3, 40)
	strategies := strategiesUnderTest()
	disciplines := []struct {
		name string
		d    sim.Discipline
	}{
		{"dedicated-shares", sim.DedicatedShares},
		{"processor-sharing", sim.ProcessorSharing},
		{"shared-fcfs", sim.SharedFCFS},
	}
	headers := []string{"strategy"}
	for _, d := range disciplines {
		headers = append(headers, d.name+"-mean(ms)")
	}
	t := stats.NewTable("Mean latency by discipline", headers...)

	means := map[string][]float64{}
	for _, s := range strategies {
		plan, err := s.Plan(sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		row := []any{s.Name()}
		for _, d := range disciplines {
			res, err := joint.Simulate(sc, plan, simHorizon, d.d)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", s.Name(), d.name, err)
			}
			m := res.Latencies().Mean()
			means[d.name] = append(means[d.name], m)
			row = append(row, m*1000)
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)

	// The joint planner (strategy 0) must be the fastest under every
	// discipline.
	robust := true
	for _, d := range disciplines {
		arr := means[d.name]
		for i := 1; i < len(arr); i++ {
			if arr[0] > arr[i]*1.02 {
				robust = false
				r.note("WARNING: under %s, %s (%.1f ms) beat joint (%.1f ms)",
					d.name, strategies[i].Name(), arr[i]*1000, arr[0]*1000)
			}
		}
	}
	if robust {
		r.note("joint remains the fastest strategy under all three service-discipline models")
	}
	return r, nil
}
