package experiments

import (
	"fmt"

	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
)

// simHorizon is the simulated time per multi-user data point.
const simHorizon = 40.0

// E4UserScaling regenerates Figure 4: simulated mean and P95 latency as
// the number of concurrent users grows on two fixed servers.
func E4UserScaling() (*Report, error) {
	r := &Report{
		ID: "E4", Artifact: "Figure 4",
		Title: "Latency vs number of users (2 servers, 60 Mbps uplinks)",
	}
	strategies := strategiesUnderTest()
	headers := []string{"users"}
	for _, s := range strategies {
		headers = append(headers, s.Name()+"-mean(ms)", s.Name()+"-p95(ms)")
	}
	t := stats.NewTable("Simulated latency vs user count", headers...)

	counts := []int{1, 2, 4, 8, 16, 32}
	// Every (count, strategy) arm is independent: plan and simulate them
	// concurrently (each arm builds its own scenario and strategy), then
	// assemble rows in order.
	nStrat := len(strategies)
	type cell struct{ mean, p95 float64 }
	cells := make([]cell, len(counts)*nStrat)
	err := forEachArm(len(cells), func(k int) error {
		ci, si := k/nStrat, k%nStrat
		sc := mixedScenario(counts[ci], 1.5, 0, 60)
		s := strategiesUnderTest()[si]
		_, res, err := joint.PlanAndSimulate(sc, s, simHorizon, sim.DedicatedShares)
		if err != nil {
			return fmt.Errorf("%s at n=%d: %w", s.Name(), counts[ci], err)
		}
		lat := res.Latencies()
		cells[k] = cell{mean: lat.Mean(), p95: lat.P95()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var gapAt1, gapAtMax float64
	for ci, n := range counts {
		row := []any{n}
		var jointMean, bestBaseMean float64
		for si := range strategies {
			c := cells[ci*nStrat+si]
			row = append(row, c.mean*1000, c.p95*1000)
			if si == 0 {
				jointMean = c.mean
			} else if bestBaseMean == 0 || c.mean < bestBaseMean {
				bestBaseMean = c.mean
			}
		}
		t.AddRow(row...)
		if n == counts[0] {
			gapAt1 = bestBaseMean / jointMean
		}
		if n == counts[len(counts)-1] {
			gapAtMax = bestBaseMean / jointMean
		}
	}
	r.Tables = append(r.Tables, t)
	r.note("joint advantage over best baseline: %.2fx at N=%d, %.2fx at N=%d (gap %s with contention)",
		gapAt1, counts[0], gapAtMax, counts[len(counts)-1],
		map[bool]string{true: "widens", false: "narrows"}[gapAtMax > gapAt1])
	return r, nil
}

// E5DeadlineVsRate regenerates Figure 5: deadline satisfaction ratio as
// the per-user arrival rate sweeps upward (12 users, 200 ms SLO).
func E5DeadlineVsRate() (*Report, error) {
	r := &Report{
		ID: "E5", Artifact: "Figure 5",
		Title: "Deadline satisfaction vs arrival rate (12 users, 300 ms SLO)",
	}
	strategies := strategiesUnderTest()
	headers := []string{"rate(req/s/user)"}
	for _, s := range strategies {
		headers = append(headers, s.Name())
	}
	t := stats.NewTable("Deadline satisfaction ratio", headers...)

	rates := []float64{1, 2, 4, 8, 16, 24}
	// Arms run concurrently (see E4); the sustained-rate scan below needs
	// the full grid anyway.
	nStrat := len(strategies)
	drs := make([]float64, len(rates)*nStrat)
	err := forEachArm(len(drs), func(k int) error {
		ri, si := k/nStrat, k%nStrat
		sc := mixedScenario(12, rates[ri], 0.3, 100)
		s := strategiesUnderTest()[si]
		_, res, err := joint.PlanAndSimulate(sc, s, simHorizon, sim.DedicatedShares)
		if err != nil {
			return fmt.Errorf("%s at rate=%g: %w", s.Name(), rates[ri], err)
		}
		drs[k] = res.DeadlineRate()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sustained := map[string]float64{}
	alive := map[string]bool{}
	for _, s := range strategies {
		alive[s.Name()] = true
	}
	for ri, rate := range rates {
		row := []any{rate}
		for si, s := range strategies {
			dr := drs[ri*nStrat+si]
			row = append(row, dr)
			if alive[s.Name()] && dr >= 0.9 {
				sustained[s.Name()] = rate
			} else {
				alive[s.Name()] = false
			}
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	for _, s := range strategies {
		r.note("%s sustains >=90%% satisfaction up to %g req/s/user", s.Name(), sustained[s.Name()])
	}
	return r, nil
}

// E7Ablation regenerates Figure 7: the joint planner against its
// single-axis ablations at three load levels.
func E7Ablation() (*Report, error) {
	r := &Report{
		ID: "E7", Artifact: "Figure 7",
		Title: "Ablation: joint vs surgery-only vs alloc-only vs neither",
	}
	arms := []joint.Strategy{
		&joint.Planner{},
		&joint.Planner{Opt: joint.Options{DisableAllocation: true}},
		&joint.Planner{Opt: joint.Options{DisableSurgery: true}},
		&joint.Planner{Opt: joint.Options{DisableSurgery: true, DisableAllocation: true}},
	}
	headers := []string{"load(req/s/user)"}
	for _, a := range arms {
		headers = append(headers, a.Name()+"-mean(ms)", a.Name()+"-p99(ms)")
	}
	t := stats.NewTable("Simulated latency by ablation arm", headers...)

	loads := []float64{2, 6, 12}
	synergy := true
	for _, load := range loads {
		sc := mixedScenario(12, load, 0, 25)
		row := []any{load}
		var means []float64
		for _, a := range arms {
			_, res, err := joint.PlanAndSimulate(sc, a, simHorizon, sim.DedicatedShares)
			if err != nil {
				return nil, fmt.Errorf("%s at load=%g: %w", a.Name(), load, err)
			}
			lat := res.Latencies()
			means = append(means, lat.Mean())
			row = append(row, lat.Mean()*1000, lat.P99()*1000)
		}
		t.AddRow(row...)
		// Joint must beat both single arms; both single arms must beat
		// neither (at least weakly).
		if !(means[0] <= means[1]*1.05 && means[0] <= means[2]*1.05) {
			synergy = false
		}
	}
	r.Tables = append(r.Tables, t)
	if synergy {
		r.note("joint <= each single-axis arm at every load: the two mechanisms compose")
	} else {
		r.note("WARNING: an ablation arm beat joint at some load")
	}
	return r, nil
}

// E8Heterogeneity regenerates Figure 8: fixed aggregate capacity deployed
// as homogeneous twins vs a heterogeneous (strong + weak) pair.
func E8Heterogeneity() (*Report, error) {
	r := &Report{
		ID: "E8", Artifact: "Figure 8",
		Title: "Heterogeneity sensitivity at fixed aggregate capacity",
	}
	gpu := mustDevice("edge-gpu-t4")
	configs := []struct {
		name    string
		factors [2]float64
	}{
		{"homogeneous(0.5+0.5)", [2]float64{0.5, 0.5}},
		{"mild(0.65+0.35)", [2]float64{0.65, 0.35}},
		{"strong(0.8+0.2)", [2]float64{0.8, 0.2}},
	}
	strategies := strategiesUnderTest()
	headers := []string{"capacity-split"}
	for _, s := range strategies {
		headers = append(headers, s.Name()+"-mean(ms)")
	}
	t := stats.NewTable("Simulated mean latency by capacity split", headers...)

	type key struct{ cfg, strat string }
	means := map[key]float64{}
	for _, cfg := range configs {
		sc := mixedScenario(12, 4, 0, 25)
		sc.Servers[0].Profile = gpu.Scale(cfg.factors[0], "gpu-a")
		sc.Servers[1].Profile = gpu.Scale(cfg.factors[1], "gpu-b")
		row := []any{cfg.name}
		for _, s := range strategies {
			_, res, err := joint.PlanAndSimulate(sc, s, simHorizon, sim.DedicatedShares)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", cfg.name, s.Name(), err)
			}
			m := res.Latencies().Mean()
			means[key{cfg.name, s.Name()}] = m
			row = append(row, m*1000)
		}
		t.AddRow(row...)
	}
	r.Tables = append(r.Tables, t)
	jHomo := means[key{configs[0].name, "joint"}]
	jHet := means[key{configs[2].name, "joint"}]
	r.note("joint under strong heterogeneity vs homogeneous: %.2fx (values %.1f vs %.1f ms)",
		jHet/jHomo, jHet*1000, jHomo*1000)
	return r, nil
}

// fadingLink builds the Markov-fading uplink used by the online experiment.
func fadingLink(seed int64) (netmodel.Link, error) {
	return netmodel.NewFading("wlan", netmodel.FadingConfig{
		States:    []float64{netmodel.Mbps(2), netmodel.Mbps(12), netmodel.Mbps(45)},
		MeanDwell: 8, Horizon: 300, RTT: 0.004, Seed: seed,
	})
}
