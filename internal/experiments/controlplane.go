package experiments

import (
	"fmt"

	"edgesurgeon/internal/faults"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/serve"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
	"edgesurgeon/internal/workload"
)

// E22ControlPlanePolicies replays one drifting-bandwidth + fault telemetry
// trace through the serve.Runtime under three replanning policies —
// replan-always, hysteresis, and never-replan — and simulates each sample
// window's arrivals under the plan each policy was actually serving at that
// moment. The claim under test: hysteresis holds deadline satisfaction
// within one point of replan-always while running at least five times fewer
// full (block-coordinate) replans; never-replan shows what that planning
// work buys.
func E22ControlPlanePolicies() (*Report, error) {
	r := &Report{
		ID: "E22", Artifact: "Control-plane study",
		Title: "Replanning policies on a drifting + faulty trace (always vs hysteresis vs never)",
	}
	const (
		horizon = 240.0
		period  = 5.0
	)

	// A moderately fading cluster: both uplinks wander across a 4-5x range
	// so the trace genuinely drifts, with an E20-style crash and outage on
	// top of it.
	build := func() (*joint.Scenario, error) {
		sc := mixedScenario(8, 1.2, 0.35, 40)
		mk := func(name string, statesMbps []float64, dwell float64, rtt float64, seed int64) (netmodel.Link, error) {
			states := make([]float64, len(statesMbps))
			for i, v := range statesMbps {
				states[i] = netmodel.Mbps(v)
			}
			return netmodel.NewFading(name, netmodel.FadingConfig{
				States: states, MeanDwell: dwell, Horizon: horizon * 2, RTT: rtt, Seed: seed,
			})
		}
		var err error
		if sc.Servers[0].Link, err = mk("wifi-a", []float64{16, 28, 45}, 16, 0.004, 41); err != nil {
			return nil, err
		}
		if sc.Servers[1].Link, err = mk("wifi-b", []float64{10, 18, 30}, 18, 0.006, 42); err != nil {
			return nil, err
		}
		return sc, nil
	}
	sched := faults.MustNew(
		faults.Window{Kind: faults.ServerCrash, Server: 0, Start: 60, End: 100},
		faults.Window{Kind: faults.LinkOutage, Server: 1, Start: 120, End: 160},
	)

	// Record the telemetry trace once; every arm replays the same samples.
	scTrace, err := build()
	if err != nil {
		return nil, err
	}
	servers := make([]sim.ServerConfig, len(scTrace.Servers))
	for i, s := range scTrace.Servers {
		servers[i] = sim.ServerConfig{Profile: s.Profile, Link: s.Link}
	}
	trace, err := sim.RecordTrace(servers, sched, horizon, period)
	if err != nil {
		return nil, err
	}

	type armResult struct {
		name        string
		fulls       int64
		cheaps      int64
		deferred    int64
		met         stats.Meter
		fail        stats.Meter
		faultMet    stats.Meter
		finalChange float64
	}
	arms := []struct {
		name   string
		policy serve.Policy
	}{
		{"replan-always", serve.AlwaysReplan()},
		{"hysteresis", serve.Hysteresis()},
		{"never-replan", serve.NeverReplan()},
	}
	results := make([]armResult, len(arms))
	err = forEachArm(len(arms), func(ai int) error {
		sc, err := build()
		if err != nil {
			return err
		}
		rt, err := serve.New(serve.Config{Scenario: sc, Policy: arms[ai].policy})
		if err != nil {
			return err
		}
		res := armResult{name: arms[ai].name}
		for i := range trace {
			plan, err := rt.Ingest(trace[i])
			if err != nil {
				return fmt.Errorf("%s: sample %d: %w", arms[ai].name, i, err)
			}
			// Simulate this sample window's arrivals under whatever plan the
			// policy is serving right now, with the fault trace live.
			start := trace[i].Time
			cfg := joint.BuildSimConfig(sc, plan, horizon, sim.DedicatedShares)
			cfg.Faults = sched
			cfg.Retry = sim.RetryPolicy{TaskTimeout: 2}
			for ui := range cfg.Users {
				var kept []workload.Task
				for _, task := range cfg.Users[ui].Tasks {
					if task.Arrival >= start && task.Arrival < start+period {
						kept = append(kept, task)
					}
				}
				cfg.Users[ui].Tasks = kept
			}
			simRes, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			up := sched.Health(len(sc.Servers), start)
			inFault := !up[0] || !up[1]
			for ri := range simRes.Records {
				rec := &simRes.Records[ri]
				if rec.Deadline > 0 {
					res.met.Observe(rec.Met)
					if inFault {
						res.faultMet.Observe(rec.Met)
					}
				}
				res.fail.Observe(rec.Failed)
			}
		}
		reg := rt.Metrics()
		res.fulls = reg.Counter("serve.replans.full").Value()
		res.cheaps = reg.Counter("serve.replans.cheap").Value()
		res.deferred = reg.Counter("serve.replans.deferred").Value()
		results[ai] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := stats.NewTable("Policy comparison over one 240 s trace (48 samples)",
		"policy", "full-replans", "cheap-refreshes", "deferred", "deadline-rate", "failure-rate", "fault-window-deadline-rate")
	for _, res := range results {
		t.AddRow(res.name, float64(res.fulls), float64(res.cheaps), float64(res.deferred),
			res.met.Rate(), res.fail.Rate(), res.faultMet.Rate())
	}
	r.Tables = append(r.Tables, t)

	always, hyst, never := &results[0], &results[1], &results[2]
	r.note("deadline satisfaction: hysteresis %.3f vs replan-always %.3f (delta %.3f) vs never-replan %.3f",
		hyst.met.Rate(), always.met.Rate(), always.met.Rate()-hyst.met.Rate(), never.met.Rate())
	r.note("full replans: hysteresis %d vs replan-always %d (%.1fx fewer)",
		hyst.fulls, always.fulls, float64(always.fulls)/float64(max64(hyst.fulls, 1)))
	if hyst.met.Rate() < always.met.Rate()-0.01 {
		r.note("WARNING: hysteresis lost more than one point of deadline satisfaction vs replan-always")
	}
	if always.fulls < 5*hyst.fulls {
		r.note("WARNING: hysteresis did not cut full replans by at least 5x")
	}
	if never.faultMet.Rate() > hyst.faultMet.Rate() {
		r.note("WARNING: never-replan beat hysteresis inside fault windows — the control plane is not earning its keep")
	}
	return r, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
