package experiments

import (
	"fmt"

	"edgesurgeon/internal/faults"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
	"edgesurgeon/internal/workload"
)

// E20AvailabilityUnderFailures measures serving availability across a
// scripted fault trace: a server crash, an uplink outage, and a capacity
// brown-out, each spanning whole replanning epochs. Three arms run the
// identical workload under the identical faults: a static plan, the
// drift-only dispatcher (epoch replanning that observes link rates but not
// health), and the failure-aware dispatcher (ObserveHealth evacuation,
// local fallback, and admission control). Failed tasks count as deadline
// misses; latency percentiles are over completed tasks.
func E20AvailabilityUnderFailures() (*Report, error) {
	r := &Report{
		ID: "E20", Artifact: "Figure 18",
		Title: "Availability under server/link failures (static vs drift-only vs failure-aware dispatch)",
	}
	const (
		horizon = 240.0
		epoch   = 20.0
	)
	sched := faults.MustNew(
		faults.Window{Kind: faults.ServerCrash, Server: 0, Start: 60, End: 100},
		faults.Window{Kind: faults.LinkOutage, Server: 1, Start: 120, End: 160},
		faults.Window{Kind: faults.Brownout, Server: 0, Start: 180, End: 220, Factor: 0.4},
	)
	retry := sim.RetryPolicy{TaskTimeout: 2}
	build := func() *joint.Scenario { return mixedScenario(8, 1.2, 0.35, 40) }
	faulty := func(cfg sim.Config) sim.Config {
		cfg.Faults = sched
		cfg.Retry = retry
		return cfg
	}

	// Static arm: one plan, one whole-horizon run under the fault trace.
	scStatic := build()
	staticPlan, err := (&joint.Planner{}).Plan(scStatic)
	if err != nil {
		return nil, err
	}
	staticRes, err := sim.Run(faulty(joint.BuildSimConfig(scStatic, staticPlan, horizon, sim.DedicatedShares)))
	if err != nil {
		return nil, err
	}

	// Dispatcher arms: replan at every epoch boundary, simulate that
	// epoch's arrivals under the refreshed decisions and the fault trace.
	type epochStats struct {
		lat  stats.Series
		met  stats.Meter
		fail stats.Meter
	}
	runDispatcherArm := func(observe func(d *joint.Dispatcher, start float64) (*joint.Plan, error)) (overall epochStats, perEpoch []epochStats, lastRestored bool, err error) {
		sc := build()
		disp, err := joint.NewDispatcher(sc, &joint.Planner{})
		if err != nil {
			return overall, nil, false, err
		}
		for start := 0.0; start < horizon; start += epoch {
			plan, err := observe(disp, start)
			if err != nil {
				return overall, nil, false, fmt.Errorf("epoch %.0f: %w", start, err)
			}
			cfg := faulty(joint.BuildSimConfig(sc, plan, horizon, sim.DedicatedShares))
			for ui := range cfg.Users {
				var kept []workload.Task
				for _, task := range cfg.Users[ui].Tasks {
					if task.Arrival >= start && task.Arrival < start+epoch {
						kept = append(kept, task)
					}
				}
				cfg.Users[ui].Tasks = kept
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return overall, nil, false, err
			}
			var ep epochStats
			for i := range res.Records {
				rec := &res.Records[i]
				if !rec.Failed {
					ep.lat.Add(rec.Latency)
					overall.lat.Add(rec.Latency)
				}
				if rec.Deadline > 0 {
					ep.met.Observe(rec.Met)
					overall.met.Observe(rec.Met)
				}
				ep.fail.Observe(rec.Failed)
				overall.fail.Observe(rec.Failed)
			}
			perEpoch = append(perEpoch, ep)
		}
		// Recovery contract: after the final (all-healthy) epoch the
		// dispatcher must hold the pristine pre-fault plan — same
		// objective, bit for bit.
		base, err := (&joint.Planner{}).Plan(build())
		if err != nil {
			return overall, nil, false, err
		}
		lastRestored = disp.Health().Restored && disp.Current().Objective == base.Objective
		return overall, perEpoch, lastRestored, nil
	}

	driftOverall, driftEpochs, _, err := runDispatcherArm(func(d *joint.Dispatcher, start float64) (*joint.Plan, error) {
		return d.ObserveWindow(start, epoch)
	})
	if err != nil {
		return nil, err
	}
	awareOverall, awareEpochs, awareRestored, err := runDispatcherArm(func(d *joint.Dispatcher, start float64) (*joint.Plan, error) {
		return d.ObserveHealth(sched.Health(2, start))
	})
	if err != nil {
		return nil, err
	}

	epochTable := stats.NewTable("Per-epoch deadline satisfaction",
		"epoch-start(s)", "srv0-up", "srv1-up", "static", "drift-only", "failure-aware")
	inFault := func(start float64) bool {
		up := sched.Health(2, start)
		return !up[0] || !up[1]
	}
	var staticFault, driftFault, awareFault stats.Meter
	for ei, start := 0, 0.0; start < horizon; ei, start = ei+1, start+epoch {
		var staticEp stats.Meter
		for i := range staticRes.Records {
			rec := &staticRes.Records[i]
			if rec.Deadline > 0 && rec.Arrival >= start && rec.Arrival < start+epoch {
				staticEp.Observe(rec.Met)
			}
		}
		up := sched.Health(2, start)
		epochTable.AddRow(start, boolInt(up[0]), boolInt(up[1]),
			staticEp.Rate(), driftEpochs[ei].met.Rate(), awareEpochs[ei].met.Rate())
		if inFault(start) {
			staticFault.Merge(staticEp)
			driftFault.Merge(driftEpochs[ei].met)
			awareFault.Merge(awareEpochs[ei].met)
		}
	}
	r.Tables = append(r.Tables, epochTable)

	staticLat := staticRes.Latencies()
	t := stats.NewTable("Overall comparison",
		"arm", "mean(ms)", "p99(ms)", "deadline-rate", "failure-rate", "fault-window-deadline-rate")
	t.AddRow("static", staticLat.Mean()*1000, staticLat.P99()*1000,
		staticRes.DeadlineRate(), staticRes.FailureRate(), staticFault.Rate())
	t.AddRow("drift-only", driftOverall.lat.Mean()*1000, driftOverall.lat.P99()*1000,
		driftOverall.met.Rate(), driftOverall.fail.Rate(), driftFault.Rate())
	t.AddRow("failure-aware", awareOverall.lat.Mean()*1000, awareOverall.lat.P99()*1000,
		awareOverall.met.Rate(), awareOverall.fail.Rate(), awareFault.Rate())
	r.Tables = append(r.Tables, t)

	r.note("fault-window deadline rate: failure-aware %.3f vs drift-only %.3f vs static %.3f",
		awareFault.Rate(), driftFault.Rate(), staticFault.Rate())
	r.note("overall failure rate: failure-aware %.3f vs static %.3f",
		awareOverall.fail.Rate(), staticRes.FailureRate())
	if awareFault.Rate() <= staticFault.Rate() || awareFault.Rate() <= driftFault.Rate() {
		r.note("WARNING: failure-aware dispatch is not strictly better inside fault windows")
	}
	if awareRestored {
		r.note("post-fault recovery restored the pristine plan (objective matches the pre-fault optimum exactly)")
	} else {
		r.note("WARNING: recovery did not restore the pre-fault plan")
	}
	return r, nil
}

func boolInt(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
