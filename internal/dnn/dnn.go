// Package dnn models deep neural networks as chains of computational units
// with exact analytic cost arithmetic (FLOPs, parameter counts, activation
// sizes). It is the substrate on which model surgery and partitioning
// decisions are made: the optimizer never executes a network, it only needs
// the per-layer compute/transfer profile, which is an architectural property
// this package computes exactly.
//
// A Model is a chain of Units. A Unit is the smallest granularity at which
// the model may be cut (partitioned between device and server) or at which
// an early-exit branch may be attached. Simple networks (AlexNet, VGG) have
// one layer per unit; residual and inverted-residual networks group each
// block into a single unit so that cuts never split a skip connection.
package dnn

import (
	"fmt"
	"strings"
	"sync"
)

// BytesPerElement is the size of one activation or weight element. All
// profiles assume float32 tensors, matching common edge deployments.
const BytesPerElement = 4

// LayerType enumerates the primitive layer kinds the cost model understands.
type LayerType int

const (
	// Conv is a standard (possibly grouped) 2-D convolution.
	Conv LayerType = iota
	// DWConv is a depthwise 2-D convolution (groups == channels).
	DWConv
	// FC is a fully connected (dense) layer.
	FC
	// MaxPool is a max-pooling layer.
	MaxPool
	// AvgPool is an average-pooling layer (including global average pool).
	AvgPool
	// Act is an elementwise activation (ReLU, ReLU6, sigmoid, ...).
	Act
	// Norm is a normalization layer (batch norm at inference time).
	Norm
	// Add is an elementwise residual addition.
	Add
	// Flatten reshapes a CHW tensor into a vector. Zero cost.
	Flatten
	// Softmax is the final classifier activation.
	Softmax
	// Concat joins the main chain with a side branch along channels
	// (e.g. SqueezeNet fire-module expand paths).
	Concat
	numLayerTypes
)

// String returns a short human-readable layer-type name.
func (t LayerType) String() string {
	switch t {
	case Conv:
		return "conv"
	case DWConv:
		return "dwconv"
	case FC:
		return "fc"
	case MaxPool:
		return "maxpool"
	case AvgPool:
		return "avgpool"
	case Act:
		return "act"
	case Norm:
		return "norm"
	case Add:
		return "add"
	case Flatten:
		return "flatten"
	case Softmax:
		return "softmax"
	case Concat:
		return "concat"
	default:
		return fmt.Sprintf("layertype(%d)", int(t))
	}
}

// NumLayerTypes is the number of distinct LayerType values; hardware
// profiles index per-type efficiency tables by LayerType.
const NumLayerTypes = int(numLayerTypes)

// Shape describes a CHW activation tensor. FC layers use C as the feature
// width with H = W = 1.
type Shape struct {
	C, H, W int
}

// Elems returns the number of elements in the tensor.
func (s Shape) Elems() int64 { return int64(s.C) * int64(s.H) * int64(s.W) }

// Bytes returns the serialized size of the tensor in bytes.
func (s Shape) Bytes() int64 { return s.Elems() * BytesPerElement }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// Vec returns a 1-D shape with n features.
func Vec(n int) Shape { return Shape{C: n, H: 1, W: 1} }

// Layer is a single primitive operation with fully resolved input/output
// shapes and exact cost figures.
type Layer struct {
	Name string
	Type LayerType
	In   Shape
	Out  Shape

	// Kernel geometry; meaningful for Conv, DWConv and pooling layers.
	KH, KW, Stride, Pad int
	// Groups is the convolution group count (1 for dense convolution).
	Groups int

	// Params is the number of learnable scalars (weights + biases).
	Params int64
	// FLOPs is the number of floating point operations for one inference
	// (multiply-accumulate counted as 2 FLOPs).
	FLOPs int64

	// Side marks a layer that sits on a skip path (e.g. a residual
	// downsample projection). Side layers contribute cost but do not
	// participate in the main-chain shape flow.
	Side bool
}

// AsSide returns a copy of the layer marked as a skip-path side layer.
func (l Layer) AsSide() Layer {
	l.Side = true
	return l
}

// OutBytes returns the activation size produced by the layer.
func (l Layer) OutBytes() int64 { return l.Out.Bytes() }

func convOut(in Shape, outC, k, stride, pad int) Shape {
	oh := (in.H+2*pad-k)/stride + 1
	ow := (in.W+2*pad-k)/stride + 1
	return Shape{C: outC, H: oh, W: ow}
}

// NewConv builds a dense 2-D convolution layer. bias controls whether a
// per-output-channel bias is counted (convolutions immediately followed by
// batch norm are conventionally bias-free).
func NewConv(name string, in Shape, outC, k, stride, pad int, bias bool) Layer {
	return NewGroupedConv(name, in, outC, k, stride, pad, 1, bias)
}

// NewGroupedConv builds a grouped 2-D convolution layer with the given
// group count. in.C and outC must both be divisible by groups.
func NewGroupedConv(name string, in Shape, outC, k, stride, pad, groups int, bias bool) Layer {
	if in.C%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("dnn: conv %q: channels %d->%d not divisible by groups %d", name, in.C, outC, groups))
	}
	out := convOut(in, outC, k, stride, pad)
	if out.H <= 0 || out.W <= 0 {
		panic(fmt.Sprintf("dnn: conv %q: non-positive output %v from input %v k=%d s=%d p=%d", name, out, in, k, stride, pad))
	}
	weights := int64(outC) * int64(in.C/groups) * int64(k) * int64(k)
	params := weights
	if bias {
		params += int64(outC)
	}
	macs := out.Elems() * int64(in.C/groups) * int64(k) * int64(k)
	flops := 2 * macs
	if bias {
		flops += out.Elems()
	}
	typ := Conv
	if groups == in.C && groups == outC {
		typ = DWConv
	}
	return Layer{
		Name: name, Type: typ, In: in, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		Params: params, FLOPs: flops,
	}
}

// NewDWConv builds a depthwise convolution (groups == channels).
func NewDWConv(name string, in Shape, k, stride, pad int, bias bool) Layer {
	return NewGroupedConv(name, in, in.C, k, stride, pad, in.C, bias)
}

// NewFC builds a fully connected layer mapping in features to out features.
func NewFC(name string, in, out int, bias bool) Layer {
	params := int64(in) * int64(out)
	flops := 2 * int64(in) * int64(out)
	if bias {
		params += int64(out)
		flops += int64(out)
	}
	return Layer{
		Name: name, Type: FC, In: Vec(in), Out: Vec(out),
		Params: params, FLOPs: flops,
	}
}

// NewMaxPool builds a max-pooling layer.
func NewMaxPool(name string, in Shape, k, stride, pad int) Layer {
	out := convOut(in, in.C, k, stride, pad)
	return Layer{
		Name: name, Type: MaxPool, In: in, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad,
		FLOPs: out.Elems() * int64(k) * int64(k),
	}
}

// NewAvgPool builds an average-pooling layer.
func NewAvgPool(name string, in Shape, k, stride, pad int) Layer {
	out := convOut(in, in.C, k, stride, pad)
	return Layer{
		Name: name, Type: AvgPool, In: in, Out: out,
		KH: k, KW: k, Stride: stride, Pad: pad,
		FLOPs: out.Elems() * int64(k) * int64(k),
	}
}

// NewGlobalAvgPool pools each channel to a single value.
func NewGlobalAvgPool(name string, in Shape) Layer {
	return Layer{
		Name: name, Type: AvgPool, In: in, Out: Shape{C: in.C, H: 1, W: 1},
		KH: in.H, KW: in.W, Stride: 1,
		FLOPs: in.Elems(),
	}
}

// NewAct builds an elementwise activation layer.
func NewAct(name string, in Shape) Layer {
	return Layer{Name: name, Type: Act, In: in, Out: in, FLOPs: in.Elems()}
}

// NewNorm builds an inference-time batch normalization layer (per-channel
// scale and shift).
func NewNorm(name string, in Shape) Layer {
	return Layer{
		Name: name, Type: Norm, In: in, Out: in,
		Params: 2 * int64(in.C),
		FLOPs:  2 * in.Elems(),
	}
}

// NewAdd builds an elementwise residual addition layer.
func NewAdd(name string, in Shape) Layer {
	return Layer{Name: name, Type: Add, In: in, Out: in, FLOPs: in.Elems()}
}

// NewFlatten reshapes a CHW tensor into a feature vector.
func NewFlatten(name string, in Shape) Layer {
	return Layer{Name: name, Type: Flatten, In: in, Out: Vec(int(in.Elems()))}
}

// NewSoftmax builds the classifier softmax.
func NewSoftmax(name string, n int) Layer {
	return Layer{Name: name, Type: Softmax, In: Vec(n), Out: Vec(n), FLOPs: 3 * int64(n)}
}

// NewConcat joins extraC side-branch channels onto the main chain.
func NewConcat(name string, in Shape, extraC int) Layer {
	out := Shape{C: in.C + extraC, H: in.H, W: in.W}
	return Layer{Name: name, Type: Concat, In: in, Out: out, FLOPs: out.Elems()}
}

// Unit is the smallest partitionable fragment of a model: a short run of
// layers that must execute on the same machine (e.g. one residual block).
type Unit struct {
	Name   string
	Layers []Layer
	// ExitOK marks the unit boundary as a candidate early-exit attachment
	// point for model surgery.
	ExitOK bool
}

// In returns the unit's input shape (first main-chain layer).
func (u *Unit) In() Shape {
	for _, l := range u.Layers {
		if !l.Side {
			return l.In
		}
	}
	return Shape{}
}

// Out returns the unit's output shape (last main-chain layer).
func (u *Unit) Out() Shape {
	for i := len(u.Layers) - 1; i >= 0; i-- {
		if !u.Layers[i].Side {
			return u.Layers[i].Out
		}
	}
	return Shape{}
}

// FLOPs returns the unit's total floating point operations.
func (u *Unit) FLOPs() int64 {
	var f int64
	for _, l := range u.Layers {
		f += l.FLOPs
	}
	return f
}

// Params returns the unit's total learnable parameter count.
func (u *Unit) Params() int64 {
	var p int64
	for _, l := range u.Layers {
		p += l.Params
	}
	return p
}

// OutBytes returns the serialized activation size at the unit's output,
// i.e. the bytes transferred if the model is cut immediately after it.
func (u *Unit) OutBytes() int64 { return u.Out().Bytes() }

// Model is a chain of units describing a full network.
type Model struct {
	Name string
	// Input is the model's input tensor shape.
	Input Shape
	// Classes is the classifier width (0 for non-classifiers).
	Classes int
	Units   []*Unit

	// Derived read-only caches, built once on first use. Guarded by a
	// sync.Once so concurrent planners may share one *Model; the unit
	// chain itself must not be mutated after first use.
	cacheOnce      sync.Once
	prefixFLOPs    []int64 // prefixFLOPs[i] = FLOPs of units [0, i)
	prefixParamB   []int64 // prefixParamB[i] = weight bytes of units [0, i)
	maxActPrefix   []int64 // maxActPrefix[i] = max activation bytes through unit i
	exitCandidates []int   // cut positions with ExitOK, ascending
}

// NumUnits returns the number of partitionable units.
func (m *Model) NumUnits() int { return len(m.Units) }

// TotalFLOPs returns FLOPs for one full inference.
func (m *Model) TotalFLOPs() int64 { return m.PrefixFLOPs(len(m.Units)) }

// TotalParams returns the total parameter count.
func (m *Model) TotalParams() int64 {
	var p int64
	for _, u := range m.Units {
		p += u.Params()
	}
	return p
}

// ParamBytes returns the serialized model weight size.
func (m *Model) ParamBytes() int64 { return m.TotalParams() * BytesPerElement }

// InputBytes returns the serialized input tensor size.
func (m *Model) InputBytes() int64 { return m.Input.Bytes() }

// PrefixFLOPs returns the FLOPs of the first k units.
func (m *Model) PrefixFLOPs(k int) int64 {
	m.ensureCaches()
	return m.prefixFLOPs[k]
}

// RangeFLOPs returns the FLOPs of units [i, j).
func (m *Model) RangeFLOPs(i, j int) int64 {
	return m.PrefixFLOPs(j) - m.PrefixFLOPs(i)
}

// PrefixParamBytes returns the serialized weight bytes of the first k units
// (the device-resident model slice when the network is cut after unit k).
func (m *Model) PrefixParamBytes(k int) int64 {
	m.ensureCaches()
	return m.prefixParamB[k]
}

// MaxActBytesThrough returns the largest activation produced at or before
// cut k, including the input tensor (k == 0 returns InputBytes).
func (m *Model) MaxActBytesThrough(k int) int64 {
	m.ensureCaches()
	return m.maxActPrefix[k]
}

// ensureCaches builds all derived read-only caches exactly once. It is safe
// for concurrent use, which the parallel joint planner relies on when many
// workers optimize users sharing one *Model.
func (m *Model) ensureCaches() {
	m.cacheOnce.Do(func() {
		n := len(m.Units)
		m.prefixFLOPs = make([]int64, n+1)
		m.prefixParamB = make([]int64, n+1)
		m.maxActPrefix = make([]int64, n+1)
		m.maxActPrefix[0] = m.InputBytes()
		for i, u := range m.Units {
			m.prefixFLOPs[i+1] = m.prefixFLOPs[i] + u.FLOPs()
			m.prefixParamB[i+1] = m.prefixParamB[i] + u.Params()*BytesPerElement
			m.maxActPrefix[i+1] = m.maxActPrefix[i]
			if b := u.OutBytes(); b > m.maxActPrefix[i+1] {
				m.maxActPrefix[i+1] = b
			}
			if u.ExitOK {
				m.exitCandidates = append(m.exitCandidates, i+1)
			}
		}
	})
}

// CutBytes returns the bytes that must cross the network when the model is
// cut after unit k (0 <= k <= NumUnits). k == 0 means "ship the raw input";
// k == NumUnits means "fully local" and returns the (tiny) output size.
func (m *Model) CutBytes(k int) int64 {
	if k == 0 {
		return m.InputBytes()
	}
	return m.Units[k-1].OutBytes()
}

// MaxActivationBytes returns the largest inter-unit activation, a proxy for
// peak transfer cost across all cut points.
func (m *Model) MaxActivationBytes() int64 {
	return m.MaxActBytesThrough(len(m.Units))
}

// ExitCandidates returns the unit indices (1-based cut positions: a value k
// means "after unit k") at which an early exit may be attached. The slice
// is computed once, cached on the model, and shared across calls: callers
// must treat it as read-only.
func (m *Model) ExitCandidates() []int {
	m.ensureCaches()
	return m.exitCandidates
}

// Validate checks chain shape consistency and returns a descriptive error
// for the first inconsistency found.
func (m *Model) Validate() error {
	if len(m.Units) == 0 {
		return fmt.Errorf("dnn: model %q has no units", m.Name)
	}
	prev := m.Input
	for ui, u := range m.Units {
		if len(u.Layers) == 0 {
			return fmt.Errorf("dnn: model %q unit %d (%s) has no layers", m.Name, ui, u.Name)
		}
		for li, l := range u.Layers {
			if l.Side {
				continue
			}
			// Residual adds consume the skip tensor too; their declared
			// input is the main-branch tensor which must match.
			if l.In != prev {
				return fmt.Errorf("dnn: model %q unit %d (%s) layer %d (%s): input %v != previous output %v",
					m.Name, ui, u.Name, li, l.Name, l.In, prev)
			}
			prev = l.Out
		}
	}
	return nil
}

// Summary renders a one-line-per-unit description of the model.
func (m *Model) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: input %v, %d units, %.2f GFLOPs, %.2f M params\n",
		m.Name, m.Input, m.NumUnits(),
		float64(m.TotalFLOPs())/1e9, float64(m.TotalParams())/1e6)
	for i, u := range m.Units {
		exit := " "
		if u.ExitOK {
			exit = "E"
		}
		fmt.Fprintf(&b, "  [%2d]%s %-18s out=%-12v %8.1f MFLOPs %8.2f KB act\n",
			i+1, exit, u.Name, u.Out(),
			float64(u.FLOPs())/1e6, float64(u.OutBytes())/1024)
	}
	return b.String()
}
