package dnn

import "testing"

// BenchmarkZooBuild measures constructing the full model zoo (layer-graph
// assembly plus validation).
func BenchmarkZooBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Zoo()) != 8 {
			b.Fatal("zoo size")
		}
	}
}

// BenchmarkPrefixFLOPs measures the cached prefix-cost lookups the surgery
// DP leans on.
func BenchmarkPrefixFLOPs(b *testing.B) {
	m := ResNet50()
	n := m.NumUnits()
	b.ReportAllocs()
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += m.RangeFLOPs(i%n, n)
	}
	_ = sink
}
