package dnn

import "fmt"

// The model zoo reproduces the architectures commonly evaluated by
// edge-inference papers in this line of work: two classic heavy CNNs
// (AlexNet, VGG16), two residual networks (ResNet18/34), a mobile network
// (MobileNetV2) and a one-stage detector backbone (TinyYOLO class).
// Parameter counts match the canonical torchvision implementations exactly
// (asserted in tests), so the compute/transfer profiles the optimizer sees
// are the real architectural profiles.

// Zoo returns fresh instances of every model in the zoo.
func Zoo() []*Model {
	return []*Model{
		AlexNet(), VGG16(), ResNet18(), ResNet34(), ResNet50(),
		MobileNetV2(), SqueezeNet(), TinyYOLO(),
	}
}

// ByName returns the zoo model with the given name.
func ByName(name string) (*Model, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("dnn: unknown model %q", name)
}

// ZooNames lists the available model names.
func ZooNames() []string {
	zoo := Zoo()
	names := make([]string, len(zoo))
	for i, m := range zoo {
		names[i] = m.Name
	}
	return names
}

// builder accumulates units while threading the activation shape.
type builder struct {
	m    *Model
	cur  Shape
	seen map[string]bool
}

func newBuilder(name string, input Shape, classes int) *builder {
	return &builder{
		m:    &Model{Name: name, Input: input, Classes: classes},
		cur:  input,
		seen: make(map[string]bool),
	}
}

// unit appends a unit made of the given layers and advances the shape.
func (b *builder) unit(name string, exitOK bool, layers ...Layer) {
	if b.seen[name] {
		panic(fmt.Sprintf("dnn: duplicate unit name %q in model %q", name, b.m.Name))
	}
	b.seen[name] = true
	u := &Unit{Name: name, Layers: layers, ExitOK: exitOK}
	b.m.Units = append(b.m.Units, u)
	b.cur = u.Out()
}

func (b *builder) build() *Model {
	if err := b.m.Validate(); err != nil {
		panic(err)
	}
	return b.m
}

// convReLU is a conv+bias followed by ReLU packaged as one unit.
func convReLU(name string, in Shape, outC, k, stride, pad int) []Layer {
	c := NewConv(name, in, outC, k, stride, pad, true)
	return []Layer{c, NewAct(name+".relu", c.Out)}
}

// convBNReLU is a bias-free conv + batch norm + ReLU.
func convBNReLU(name string, in Shape, outC, k, stride, pad int) []Layer {
	c := NewConv(name, in, outC, k, stride, pad, false)
	return []Layer{c, NewNorm(name+".bn", c.Out), NewAct(name+".relu", c.Out)}
}

// AlexNet returns the canonical single-tower AlexNet
// (61,100,840 parameters, as in torchvision).
func AlexNet() *Model {
	b := newBuilder("alexnet", Shape{C: 3, H: 224, W: 224}, 1000)

	b.unit("conv1", true, convReLU("conv1", b.cur, 64, 11, 4, 2)...)
	b.unit("pool1", true, NewMaxPool("pool1", b.cur, 3, 2, 0))
	b.unit("conv2", true, convReLU("conv2", b.cur, 192, 5, 1, 2)...)
	b.unit("pool2", true, NewMaxPool("pool2", b.cur, 3, 2, 0))
	b.unit("conv3", true, convReLU("conv3", b.cur, 384, 3, 1, 1)...)
	b.unit("conv4", true, convReLU("conv4", b.cur, 256, 3, 1, 1)...)
	b.unit("conv5", false, append(convReLU("conv5", b.cur, 256, 3, 1, 1), NewMaxPool("pool5", Shape{C: 256, H: 13, W: 13}, 3, 2, 0))...)
	b.unit("flatten", false, NewFlatten("flatten", b.cur))
	fc6 := NewFC("fc6", int(b.cur.Elems()), 4096, true)
	b.unit("fc6", true, fc6, NewAct("fc6.relu", fc6.Out))
	fc7 := NewFC("fc7", 4096, 4096, true)
	b.unit("fc7", false, fc7, NewAct("fc7.relu", fc7.Out))
	b.unit("fc8", false, NewFC("fc8", 4096, 1000, true), NewSoftmax("prob", 1000))
	return b.build()
}

// VGG16 returns VGG-16 with the standard classifier
// (138,357,544 parameters, as in torchvision).
func VGG16() *Model {
	b := newBuilder("vgg16", Shape{C: 3, H: 224, W: 224}, 1000)

	type stage struct {
		convs int
		ch    int
	}
	stages := []stage{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	for si, st := range stages {
		for ci := 0; ci < st.convs; ci++ {
			name := fmt.Sprintf("conv%d_%d", si+1, ci+1)
			// Exits attach at stage boundaries (after each pool), matching
			// the coarse-grained exit candidates multi-exit papers use.
			b.unit(name, false, convReLU(name, b.cur, st.ch, 3, 1, 1)...)
		}
		pname := fmt.Sprintf("pool%d", si+1)
		b.unit(pname, true, NewMaxPool(pname, b.cur, 2, 2, 0))
	}
	b.unit("flatten", false, NewFlatten("flatten", b.cur))
	fc6 := NewFC("fc6", int(b.cur.Elems()), 4096, true)
	b.unit("fc6", true, fc6, NewAct("fc6.relu", fc6.Out))
	fc7 := NewFC("fc7", 4096, 4096, true)
	b.unit("fc7", false, fc7, NewAct("fc7.relu", fc7.Out))
	b.unit("fc8", false, NewFC("fc8", 4096, 1000, true), NewSoftmax("prob", 1000))
	return b.build()
}

// basicBlock builds one ResNet basic block (two 3x3 convolutions with an
// identity or projection shortcut) as a single unit.
func basicBlock(name string, in Shape, outC, stride int) []Layer {
	c1 := NewConv(name+".conv1", in, outC, 3, stride, 1, false)
	layers := []Layer{c1, NewNorm(name+".bn1", c1.Out), NewAct(name+".relu1", c1.Out)}
	c2 := NewConv(name+".conv2", c1.Out, outC, 3, 1, 1, false)
	layers = append(layers, c2, NewNorm(name+".bn2", c2.Out))
	if stride != 1 || in.C != outC {
		ds := NewConv(name+".downsample", in, outC, 1, stride, 0, false)
		layers = append(layers, ds.AsSide(), NewNorm(name+".downsample.bn", ds.Out).AsSide())
	}
	layers = append(layers, NewAdd(name+".add", c2.Out), NewAct(name+".relu2", c2.Out))
	return layers
}

func resnet(name string, blocks [4]int) *Model {
	b := newBuilder(name, Shape{C: 3, H: 224, W: 224}, 1000)
	b.unit("stem", true, append(convBNReLU("conv1", b.cur, 64, 7, 2, 3), NewMaxPool("maxpool", Shape{C: 64, H: 112, W: 112}, 3, 2, 1))...)

	chans := [4]int{64, 128, 256, 512}
	for si := 0; si < 4; si++ {
		for bi := 0; bi < blocks[si]; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			uname := fmt.Sprintf("layer%d.%d", si+1, bi)
			b.unit(uname, true, basicBlock(uname, b.cur, chans[si], stride)...)
		}
	}
	b.unit("avgpool", false, NewGlobalAvgPool("avgpool", b.cur), NewFlatten("flatten", Shape{C: 512, H: 1, W: 1}))
	b.unit("fc", false, NewFC("fc", 512, 1000, true), NewSoftmax("prob", 1000))
	return b.build()
}

// ResNet18 returns ResNet-18 (11,689,512 parameters, as in torchvision).
func ResNet18() *Model { return resnet("resnet18", [4]int{2, 2, 2, 2}) }

// ResNet34 returns ResNet-34 (21,797,672 parameters, as in torchvision).
func ResNet34() *Model { return resnet("resnet34", [4]int{3, 4, 6, 3}) }

// bottleneckBlock builds one ResNet bottleneck block (1x1 reduce, 3x3,
// 1x1 expand-4x with projection shortcut when needed) as a single unit.
func bottleneckBlock(name string, in Shape, midC, stride int) []Layer {
	outC := 4 * midC
	c1 := NewConv(name+".conv1", in, midC, 1, 1, 0, false)
	layers := []Layer{c1, NewNorm(name+".bn1", c1.Out), NewAct(name+".relu1", c1.Out)}
	c2 := NewConv(name+".conv2", c1.Out, midC, 3, stride, 1, false)
	layers = append(layers, c2, NewNorm(name+".bn2", c2.Out), NewAct(name+".relu2", c2.Out))
	c3 := NewConv(name+".conv3", c2.Out, outC, 1, 1, 0, false)
	layers = append(layers, c3, NewNorm(name+".bn3", c3.Out))
	if stride != 1 || in.C != outC {
		ds := NewConv(name+".downsample", in, outC, 1, stride, 0, false)
		layers = append(layers, ds.AsSide(), NewNorm(name+".downsample.bn", ds.Out).AsSide())
	}
	layers = append(layers, NewAdd(name+".add", c3.Out), NewAct(name+".relu3", c3.Out))
	return layers
}

// ResNet50 returns ResNet-50 (25,557,032 parameters, as in torchvision).
func ResNet50() *Model {
	b := newBuilder("resnet50", Shape{C: 3, H: 224, W: 224}, 1000)
	b.unit("stem", true, append(convBNReLU("conv1", b.cur, 64, 7, 2, 3), NewMaxPool("maxpool", Shape{C: 64, H: 112, W: 112}, 3, 2, 1))...)

	blocks := [4]int{3, 4, 6, 3}
	mids := [4]int{64, 128, 256, 512}
	for si := 0; si < 4; si++ {
		for bi := 0; bi < blocks[si]; bi++ {
			stride := 1
			if si > 0 && bi == 0 {
				stride = 2
			}
			uname := fmt.Sprintf("layer%d.%d", si+1, bi)
			b.unit(uname, true, bottleneckBlock(uname, b.cur, mids[si], stride)...)
		}
	}
	b.unit("avgpool", false, NewGlobalAvgPool("avgpool", b.cur), NewFlatten("flatten", Shape{C: 2048, H: 1, W: 1}))
	b.unit("fc", false, NewFC("fc", 2048, 1000, true), NewSoftmax("prob", 1000))
	return b.build()
}

// fireModule builds one SqueezeNet fire module (1x1 squeeze, then parallel
// 1x1 and 3x3 expands concatenated along channels) as a single unit. The
// 3x3 expand path is modeled as a side branch feeding the concat.
func fireModule(name string, in Shape, squeeze, e1, e3 int) []Layer {
	sq := NewConv(name+".squeeze", in, squeeze, 1, 1, 0, true)
	layers := []Layer{sq, NewAct(name+".squeeze.relu", sq.Out)}
	x1 := NewConv(name+".expand1x1", sq.Out, e1, 1, 1, 0, true)
	layers = append(layers, x1, NewAct(name+".expand1x1.relu", x1.Out))
	x3 := NewConv(name+".expand3x3", sq.Out, e3, 3, 1, 1, true)
	layers = append(layers, x3.AsSide(), NewAct(name+".expand3x3.relu", x3.Out).AsSide())
	layers = append(layers, NewConcat(name+".concat", x1.Out, e3))
	return layers
}

// SqueezeNet returns SqueezeNet 1.0 (1,248,424 parameters, as in
// torchvision squeezenet1_0).
func SqueezeNet() *Model {
	b := newBuilder("squeezenet", Shape{C: 3, H: 224, W: 224}, 1000)
	c1 := NewConv("conv1", b.cur, 96, 7, 2, 0, true)
	b.unit("stem", true, c1, NewAct("conv1.relu", c1.Out), NewMaxPool("pool1", c1.Out, 3, 2, 0))

	type fire struct{ s, e1, e3 int }
	group1 := []fire{{16, 64, 64}, {16, 64, 64}, {32, 128, 128}}
	group2 := []fire{{32, 128, 128}, {48, 192, 192}, {48, 192, 192}, {64, 256, 256}}
	group3 := []fire{{64, 256, 256}}
	idx := 2
	addGroup := func(fs []fire, pool bool) {
		for _, f := range fs {
			name := fmt.Sprintf("fire%d", idx)
			b.unit(name, true, fireModule(name, b.cur, f.s, f.e1, f.e3)...)
			idx++
		}
		if pool {
			pname := fmt.Sprintf("pool%d", idx)
			b.unit(pname, false, NewMaxPool(pname, b.cur, 3, 2, 0))
		}
	}
	addGroup(group1, true)
	addGroup(group2, true)
	addGroup(group3, false)

	c10 := NewConv("conv10", b.cur, 1000, 1, 1, 0, true)
	b.unit("head", false, c10, NewAct("conv10.relu", c10.Out),
		NewGlobalAvgPool("avgpool", c10.Out), NewFlatten("flatten", Shape{C: 1000, H: 1, W: 1}),
		NewSoftmax("prob", 1000))
	return b.build()
}

// invertedResidual builds one MobileNetV2 inverted-residual block as a
// single unit: 1x1 expand, 3x3 depthwise, 1x1 project, with a residual add
// when stride == 1 and channels match.
func invertedResidual(name string, in Shape, outC, stride, expand int) []Layer {
	var layers []Layer
	cur := in
	if expand != 1 {
		e := NewConv(name+".expand", cur, in.C*expand, 1, 1, 0, false)
		layers = append(layers, e, NewNorm(name+".expand.bn", e.Out), NewAct(name+".expand.relu6", e.Out))
		cur = e.Out
	}
	dw := NewDWConv(name+".dw", cur, 3, stride, 1, false)
	layers = append(layers, dw, NewNorm(name+".dw.bn", dw.Out), NewAct(name+".dw.relu6", dw.Out))
	pr := NewConv(name+".project", dw.Out, outC, 1, 1, 0, false)
	layers = append(layers, pr, NewNorm(name+".project.bn", pr.Out))
	if stride == 1 && in.C == outC {
		layers = append(layers, NewAdd(name+".add", pr.Out))
	}
	return layers
}

// MobileNetV2 returns MobileNetV2 at width 1.0
// (3,504,872 parameters, as in torchvision).
func MobileNetV2() *Model {
	b := newBuilder("mobilenetv2", Shape{C: 3, H: 224, W: 224}, 1000)
	b.unit("stem", true, convBNReLU("conv1", b.cur, 32, 3, 2, 1)...)

	// t (expansion), c (output channels), n (repeats), s (first stride)
	cfg := [][4]int{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	blk := 0
	for _, c := range cfg {
		t, ch, n, s := c[0], c[1], c[2], c[3]
		for i := 0; i < n; i++ {
			stride := 1
			if i == 0 {
				stride = s
			}
			name := fmt.Sprintf("block%d", blk)
			b.unit(name, true, invertedResidual(name, b.cur, ch, stride, t)...)
			blk++
		}
	}
	b.unit("head", false, convBNReLU("conv_last", b.cur, 1280, 1, 1, 0)...)
	b.unit("avgpool", false, NewGlobalAvgPool("avgpool", b.cur), NewFlatten("flatten", Shape{C: 1280, H: 1, W: 1}))
	b.unit("classifier", false, NewFC("classifier", 1280, 1000, true), NewSoftmax("prob", 1000))
	return b.build()
}

// TinyYOLO returns a Tiny-YOLOv2-class one-stage detector backbone
// (20-class VOC head, 416x416 input), the representative detection workload.
func TinyYOLO() *Model {
	b := newBuilder("tinyyolo", Shape{C: 3, H: 416, W: 416}, 0)

	chans := []int{16, 32, 64, 128, 256, 512}
	for i, c := range chans {
		cname := fmt.Sprintf("conv%d", i+1)
		b.unit(cname, true, convBNReLU(cname, b.cur, c, 3, 1, 1)...)
		pname := fmt.Sprintf("pool%d", i+1)
		stride := 2
		if i == len(chans)-1 {
			stride = 1 // final pool keeps 13x13 resolution
		}
		if stride == 1 {
			// stride-1 3x3 maxpool with pad 1 preserves shape
			b.unit(pname, false, NewMaxPool(pname, b.cur, 3, 1, 1))
		} else {
			b.unit(pname, false, NewMaxPool(pname, b.cur, 2, 2, 0))
		}
	}
	b.unit("conv7", true, convBNReLU("conv7", b.cur, 1024, 3, 1, 1)...)
	b.unit("conv8", true, convBNReLU("conv8", b.cur, 1024, 3, 1, 1)...)
	// Detection head: 5 anchors x (20 classes + 5 box terms) = 125 channels.
	b.unit("head", false, NewConv("conv9", b.cur, 125, 1, 1, 0, true))
	return b.build()
}
