package dnn

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvArithmetic(t *testing.T) {
	// AlexNet conv1: 3x224x224 -> 64x55x55, 11x11 stride 4 pad 2.
	l := NewConv("conv1", Shape{C: 3, H: 224, W: 224}, 64, 11, 4, 2, true)
	if l.Out != (Shape{C: 64, H: 55, W: 55}) {
		t.Fatalf("conv1 out = %v, want 64x55x55", l.Out)
	}
	wantParams := int64(64*3*11*11 + 64)
	if l.Params != wantParams {
		t.Errorf("conv1 params = %d, want %d", l.Params, wantParams)
	}
	wantMACs := int64(64*55*55) * int64(3*11*11)
	if got := l.FLOPs; got != 2*wantMACs+64*55*55 {
		t.Errorf("conv1 FLOPs = %d, want %d", got, 2*wantMACs+64*55*55)
	}
}

func TestDepthwiseConvArithmetic(t *testing.T) {
	in := Shape{C: 32, H: 112, W: 112}
	l := NewDWConv("dw", in, 3, 1, 1, false)
	if l.Type != DWConv {
		t.Fatalf("type = %v, want dwconv", l.Type)
	}
	if l.Out != in {
		t.Fatalf("out = %v, want %v", l.Out, in)
	}
	if want := int64(32 * 3 * 3); l.Params != want {
		t.Errorf("params = %d, want %d", l.Params, want)
	}
	if want := 2 * int64(32*112*112) * 9; l.FLOPs != want {
		t.Errorf("FLOPs = %d, want %d", l.FLOPs, want)
	}
}

func TestFCArithmetic(t *testing.T) {
	l := NewFC("fc6", 9216, 4096, true)
	if want := int64(9216*4096 + 4096); l.Params != want {
		t.Errorf("params = %d, want %d", l.Params, want)
	}
	if want := int64(2*9216*4096 + 4096); l.FLOPs != want {
		t.Errorf("FLOPs = %d, want %d", l.FLOPs, want)
	}
}

func TestPoolShapes(t *testing.T) {
	p := NewMaxPool("pool", Shape{C: 64, H: 55, W: 55}, 3, 2, 0)
	if p.Out != (Shape{C: 64, H: 27, W: 27}) {
		t.Errorf("pool out = %v, want 64x27x27", p.Out)
	}
	g := NewGlobalAvgPool("gap", Shape{C: 512, H: 7, W: 7})
	if g.Out != (Shape{C: 512, H: 1, W: 1}) {
		t.Errorf("gap out = %v, want 512x1x1", g.Out)
	}
}

func TestGroupedConvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible groups")
		}
	}()
	NewGroupedConv("bad", Shape{C: 3, H: 8, W: 8}, 8, 3, 1, 1, 2, false)
}

// Canonical parameter counts from torchvision; these pin the zoo to the
// real architectures.
func TestZooParameterCounts(t *testing.T) {
	want := map[string]int64{
		"alexnet":     61_100_840,
		"vgg16":       138_357_544,
		"resnet18":    11_689_512,
		"resnet34":    21_797_672,
		"resnet50":    25_557_032,
		"mobilenetv2": 3_504_872,
		"squeezenet":  1_248_424,
	}
	for name, w := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got := m.TotalParams(); got != w {
			t.Errorf("%s params = %d, want %d (delta %d)", name, got, w, got-w)
		}
	}
}

func TestZooFLOPRanges(t *testing.T) {
	// FLOPs = 2*MACs (+small bias/act terms); canonical MAC counts are
	// AlexNet ~0.71G, VGG16 ~15.5G, ResNet18 ~1.82G, ResNet34 ~3.67G,
	// MobileNetV2 ~0.30G. Allow 15% slack for act/norm bookkeeping.
	type rng struct{ lo, hi float64 }
	// ResNet50 ~4.1 GMACs, SqueezeNet 1.0 ~0.82 GMACs.
	want := map[string]rng{
		"alexnet":     {2 * 0.71e9 * 0.9, 2 * 0.71e9 * 1.15},
		"vgg16":       {2 * 15.5e9 * 0.9, 2 * 15.5e9 * 1.15},
		"resnet18":    {2 * 1.82e9 * 0.9, 2 * 1.82e9 * 1.15},
		"resnet34":    {2 * 3.67e9 * 0.9, 2 * 3.67e9 * 1.15},
		"resnet50":    {2 * 4.1e9 * 0.85, 2 * 4.1e9 * 1.2},
		"mobilenetv2": {2 * 0.30e9 * 0.9, 2 * 0.32e9 * 1.25},
		"squeezenet":  {2 * 0.82e9 * 0.8, 2 * 0.82e9 * 1.25},
	}
	for name, w := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		got := float64(m.TotalFLOPs())
		if got < w.lo || got > w.hi {
			t.Errorf("%s FLOPs = %.3g, want in [%.3g, %.3g]", name, got, w.lo, w.hi)
		}
	}
}

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if len(m.ExitCandidates()) < 4 {
			t.Errorf("%s: only %d exit candidates, want >= 4", m.Name, len(m.ExitCandidates()))
		}
	}
}

func TestPrefixFLOPsConsistency(t *testing.T) {
	for _, m := range Zoo() {
		if m.PrefixFLOPs(0) != 0 {
			t.Errorf("%s: PrefixFLOPs(0) = %d, want 0", m.Name, m.PrefixFLOPs(0))
		}
		var sum int64
		for i, u := range m.Units {
			sum += u.FLOPs()
			if got := m.PrefixFLOPs(i + 1); got != sum {
				t.Fatalf("%s: PrefixFLOPs(%d) = %d, want %d", m.Name, i+1, got, sum)
			}
		}
		if m.TotalFLOPs() != sum {
			t.Errorf("%s: TotalFLOPs = %d, want %d", m.Name, m.TotalFLOPs(), sum)
		}
	}
}

func TestRangeFLOPsProperty(t *testing.T) {
	m := ResNet18()
	n := m.NumUnits()
	f := func(a, b uint8) bool {
		i := int(a) % (n + 1)
		j := int(b) % (n + 1)
		if i > j {
			i, j = j, i
		}
		// Range must be non-negative and additive.
		r := m.RangeFLOPs(i, j)
		if r < 0 {
			return false
		}
		mid := (i + j) / 2
		return m.RangeFLOPs(i, mid)+m.RangeFLOPs(mid, j) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestCutBytesEndpoints(t *testing.T) {
	for _, m := range Zoo() {
		if got := m.CutBytes(0); got != m.InputBytes() {
			t.Errorf("%s: CutBytes(0) = %d, want input %d", m.Name, got, m.InputBytes())
		}
		last := m.CutBytes(m.NumUnits())
		if last <= 0 {
			t.Errorf("%s: CutBytes(final) = %d, want > 0", m.Name, last)
		}
		if last > m.InputBytes() && m.Classes > 0 {
			t.Errorf("%s: classifier output (%d B) larger than input (%d B)", m.Name, last, m.InputBytes())
		}
	}
}

func TestMaxActivationBytes(t *testing.T) {
	for _, m := range Zoo() {
		max := m.MaxActivationBytes()
		if max < m.InputBytes() {
			t.Errorf("%s: max activation %d < input %d", m.Name, max, m.InputBytes())
		}
		for k := 0; k <= m.NumUnits(); k++ {
			if m.CutBytes(k) > max {
				t.Errorf("%s: CutBytes(%d) = %d exceeds reported max %d", m.Name, k, m.CutBytes(k), max)
			}
		}
	}
}

func TestValidateDetectsBrokenChain(t *testing.T) {
	m := AlexNet()
	// Corrupt a layer input shape.
	m.Units[2].Layers[0].In = Shape{C: 1, H: 1, W: 1}
	if err := m.Validate(); err == nil {
		t.Fatal("Validate accepted a broken chain")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestSummaryContainsUnits(t *testing.T) {
	s := ResNet18().Summary()
	if len(s) < 100 {
		t.Fatalf("summary too short: %q", s)
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{C: 3, H: 2, W: 4}
	if s.Elems() != 24 {
		t.Errorf("Elems = %d, want 24", s.Elems())
	}
	if s.Bytes() != 96 {
		t.Errorf("Bytes = %d, want 96", s.Bytes())
	}
	if Vec(10) != (Shape{C: 10, H: 1, W: 1}) {
		t.Errorf("Vec(10) = %v", Vec(10))
	}
}

func TestLayerTypeStrings(t *testing.T) {
	for i := 0; i < NumLayerTypes; i++ {
		if LayerType(i).String() == "" {
			t.Errorf("LayerType(%d) has empty name", i)
		}
	}
}
