# EdgeSurgeon build/verification targets.

GO ?= go

.PHONY: all build vet test test-short test-race fuzz-smoke bench bench-smoke bench-planner-smoke bench-frontier-smoke bench-replan-smoke bench-serve-smoke serve-smoke chaos-smoke cluster-smoke client-smoke backpressure-stress experiments examples cover clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-check the concurrent paths: planner (parallel surgery fan-out,
# shared memoization cache, candidate-move evaluation), the sharded
# simulator (component worker pool + differential equivalence tests), the
# networked data plane (wire codec, agent scheduling, dispatcher,
# subprocess loopback cluster), and a small E21 scale run through the
# experiments arm pool.
test-race:
	$(GO) test -race -timeout 30m ./internal/joint/... ./internal/surgery/... ./internal/sim/... ./internal/telemetry/... ./internal/serve/...
	$(GO) test -race -timeout 15m ./internal/wire/... ./internal/agent/... ./internal/client/... ./internal/cluster/...
	$(GO) test -race -run 'TestE21SmallScaleAgrees' ./internal/experiments

# Short fuzzing pass over the optimizer kernels (~10 s per target): the
# surgery optimizer must never panic or emit invalid plans, frontier
# lookups must stay bit-identical to the optimizer at snapped shares, the
# deadline-aware allocator must keep shares in [0, 1] summing to <= 1, and
# end-to-end planning of arbitrary decoded scenarios (monolithic and
# sharded routes both) must never panic or break the share invariants.
fuzz-smoke:
	$(GO) test ./internal/surgery -run '^$$' -fuzz FuzzSurgeryOptimize -fuzztime 10s
	$(GO) test ./internal/surgery -run '^$$' -fuzz FuzzFrontierLookup -fuzztime 10s
	$(GO) test ./internal/alloc -run '^$$' -fuzz FuzzAllocDeadline -fuzztime 10s
	$(GO) test ./internal/telemetry -run '^$$' -fuzz FuzzTraceDecode -fuzztime 10s
	$(GO) test ./internal/config -run '^$$' -fuzz FuzzPlanScenario -fuzztime 10s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 10s
	$(GO) test ./internal/serve -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzWireDecode -fuzztime 10s
	$(GO) test ./internal/client -run '^$$' -fuzz FuzzClientDecode -fuzztime 10s

# One benchmark per evaluation artifact (E1-E21) plus kernel microbenchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Fast perf guard for CI: one iteration of the simulator event-loop and
# multi-user scaling benchmarks with allocation accounting.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineEvents|BenchmarkE4' -benchtime=1x -benchmem . ./internal/sim

# Planner perf guard for CI: the CI-sized E23 scale study (one dual-arm
# size plus one sharded-only size) writing BENCH_planner.json, with the
# metric keys dashboards consume asserted present.
bench-planner-smoke:
	$(GO) run ./cmd/experiments -run E23 -quick -bench-json BENCH_planner.json \
		-require-metrics E23.speedup_vs_monolithic,E23.gap_worst_pct,E23.users_max,E23.sharded_wallclock_sec,E23.frontier_wallclock_sec

# Frontier perf guard for CI: the CI-sized E24 frontier-table study (build
# + plan timings with the frontier/optimizer parity cross-check), merged
# into the same BENCH_planner.json, with its metric keys asserted present.
bench-frontier-smoke:
	$(GO) run ./cmd/experiments -run E24 -quick -bench-json BENCH_planner.json \
		-require-metrics E24.speedup_vs_legacy,E24.frontier_wallclock_sec,E24.build_sec,E24.hit_rate_pct,E24.parity_ok

# Replan-latency guard for CI: the CI-sized E26 delta-replan study (full
# replan vs dirty-single-shard delta replan from the same previous plan),
# merged into the same BENCH_planner.json, with its metric keys asserted
# present.
bench-replan-smoke:
	$(GO) run ./cmd/experiments -run E26 -quick -bench-json BENCH_planner.json \
		-require-metrics E26.replan_speedup,E26.delta_gap_pct,E26.full_replan_sec,E26.delta_replan_sec,E26.users_max

# Control-plane smoke for CI: replay the bundled drifting + faulty trace
# through cmd/edgeserved and pin the hysteresis policy's full-replan count
# (the replay is deterministic, so the golden value is exact).
serve-smoke:
	$(GO) run ./cmd/edgeserved -scenario cmd/edgeserved/testdata/smoke-scenario.json \
		-trace cmd/edgeserved/testdata/smoke-trace.jsonl \
		-policy hysteresis -expect-full-replans 4

# Crash-recovery smoke for CI: replay the same trace through the
# snapshot/WAL-backed control plane, kill the process after samples 3 and
# 8 plus throttle the planner and corrupt a sample, then assert the
# recovered run's journal, metrics and final plan are byte-identical to a
# crash-free rerun (-verify-recovery exits non-zero on any divergence).
# The in-process harness test repeats the invariant with three crashes
# and checks zero goroutine leaks after the runtimes close.
chaos-smoke:
	$(GO) test ./internal/serve -run 'TestRunChaos' -count=1
	rm -rf .chaos-smoke-dir
	$(GO) run ./cmd/edgeserved -scenario cmd/edgeserved/testdata/smoke-scenario.json \
		-trace cmd/edgeserved/testdata/smoke-trace.jsonl \
		-policy hysteresis -snapshot-dir .chaos-smoke-dir \
		-chaos crash:3 -chaos crash:8 -chaos slow:12:15:0.001 -chaos corrupt:5:nan \
		-verify-recovery -expect-full-replans 4
	rm -rf .chaos-smoke-dir

# Data-plane throughput guard for CI: the CI-sized E27 loopback-cluster
# study (real edgeagent processes over TCP under each replanning policy)
# writing its honest rps and p50/p99 latencies into BENCH_serve.json, with
# the metric keys asserted present.
bench-serve-smoke:
	$(GO) run ./cmd/experiments -run E27 -quick -bench-json BENCH_serve.json \
		-require-metrics E27.rps_never,E27.rps_hysteresis,E27.rps_delta,E27.p50_ms_hysteresis,E27.p99_ms_hysteresis,E27.ok_frac_hysteresis,E27.full_replans_hysteresis

# Live data-plane smoke for CI: boot the wire dispatcher plus one real
# edgeagent process per server on loopback TCP, drive a bounded closed
# loop, and gate on the success fraction and on the handoff path actually
# running (crossed > 0).
cluster-smoke:
	$(GO) run ./cmd/edgeserved -scenario cmd/edgeserved/testdata/smoke-scenario.json \
		-listen 127.0.0.1:0 -timescale 0.002 -requests 200 -workers 4 -min-ok-frac 0.95
	$(GO) run ./cmd/edgeserved -scenario cmd/edgeserved/testdata/smoke-scenario.json \
		-listen 127.0.0.1:0 -timescale 0.002 -requests 200 -workers 4 -min-ok-frac 0.95 \
		-stall-clients 2

# Client-library smoke for CI: the internal/client unit suite (handshake
# taxonomy, per-call deadlines, cancellation, typed errors, in-flight
# window) under the race detector.
client-smoke:
	$(GO) test -race -count=1 ./internal/client

# Backpressure stress suite for CI: misbehaving clients (stalled, slow,
# byte-at-a-time, mid-frame disconnect, reconnect storm) against a live
# dispatcher, plus the dispatcher lifecycle regressions, all under -race.
backpressure-stress:
	$(GO) test -race -count=1 -timeout 10m \
		-run 'TestStalled|TestSlowReader|TestByteAtATime|TestMidFrame|TestReconnectStorm|TestCloseWithIdle|TestAgentDeathMidRequest|TestDuplicateHello|TestOutbox|TestNonLoopback' \
		./internal/agent ./internal/cluster

# Regenerate every table and figure of the reconstructed evaluation.
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/video-analytics
	$(GO) run ./examples/smart-factory
	$(GO) run ./examples/adaptive-bandwidth
	$(GO) run ./examples/calibrated-pipeline

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
