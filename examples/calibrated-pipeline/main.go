// Calibrated pipeline: the full methodology loop in one program.
//
//  1. Train a real multi-exit network (here with the built-in engine;
//     in production this is your PyTorch/TF training job).
//  2. Profile it: measure accuracy vs mean depth across confidence
//     thresholds.
//  3. Calibrate the planner's parametric exit curves to the measurements
//     (edgesurgeon.FitAccuracyCurve).
//  4. Plan a deployment against the calibrated curves instead of the
//     library defaults.
//
// This closes the gap experiment E12 quantifies: the planner optimizes
// against measured, not assumed, exit behaviour.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"edgesurgeon"
	// The built-in engine stands in for the deployment's training
	// framework; any profiler that yields (depth, accuracy) pairs works.
	"edgesurgeon/internal/nn"
)

func main() {
	// 1. Train a multi-exit CNN-style classifier on a nonlinear task.
	fmt.Println("training multi-exit network ...")
	ds, err := nn.Rings(nn.RingsConfig{
		Samples: 8000, Features: 10, Classes: 5, BandWidth: 1.2, Jitter: 0.35, Seed: 101,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	train, test := ds.Split(0.8, rng)
	net, err := nn.NewMultiExit(nn.Config{
		In: 10, Hidden: []int{10, 20, 40, 80}, Exits: []int{0, 1, 2}, Classes: 5, Seed: 101,
	})
	if err != nil {
		log.Fatal(err)
	}
	for epoch := 0; epoch < 50; epoch++ {
		net.TrainEpoch(train, 32, 0.02, 0.9, rng)
	}

	// 2. Profile: accuracy vs mean depth across thresholds.
	var points []edgesurgeon.MeasuredPoint
	fmt.Printf("%-10s %-10s %s\n", "threshold", "depth", "accuracy")
	for _, th := range []float64{0.5, 0.65, 0.8, 0.9, 0.95, 0.99} {
		ev := net.Evaluate(test, th)
		points = append(points, edgesurgeon.MeasuredPoint{Depth: ev.MeanDepth, Accuracy: ev.Accuracy})
		fmt.Printf("%-10.2f %-10.3f %.4f\n", th, ev.MeanDepth, ev.Accuracy)
	}
	finalAcc := net.Evaluate(test, 1.1).Accuracy

	// 3. Calibrate the planner's curve family.
	curves, rmse, err := edgesurgeon.FitAccuracyCurve(points, finalAcc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncalibrated curves: Floor=%.3f Beta=%.2f Final=%.3f (RMSE %.4f)\n",
		curves.Floor, curves.Beta, curves.Final, rmse)

	// 4. Plan a deployment against the calibrated curves.
	sc := &edgesurgeon.Scenario{
		Curves: curves,
		Servers: []edgesurgeon.Server{{
			Name:    "edge-gpu",
			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
			Link:    edgesurgeon.StaticLink("wifi", edgesurgeon.Mbps(30), 4*time.Millisecond),
			RTT:     0.004,
		}},
	}
	for i := 0; i < 4; i++ {
		sc.Users = append(sc.Users, edgesurgeon.User{
			Name:        fmt.Sprintf("sensor-%d", i),
			Model:       edgesurgeon.MustModel("resnet18"),
			Device:      edgesurgeon.MustHardware("rpi4"),
			Rate:        2,
			Deadline:    0.3,
			MinAccuracy: 0.88, // floor expressed against the calibrated scale
			Difficulty:  edgesurgeon.EasyBiased,
			Arrivals:    edgesurgeon.Poisson,
			Seed:        int64(300 + i),
		})
	}
	plan, res, err := edgesurgeon.PlanAndSimulate(sc, edgesurgeon.NewPlanner(), 60, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nplanned against calibrated curves:")
	for i, d := range plan.Decisions {
		fmt.Printf("  %-9s %-44s expAcc=%.3f expLat=%.0fms\n",
			sc.Users[i].Name, d.Plan.String(), d.Eval.Accuracy, d.Latency()*1000)
	}
	fmt.Printf("simulated: mean %.0f ms, P95 %.0f ms, deadline %.1f%%, accuracy %.3f\n",
		res.Latencies().Mean()*1000, res.Latencies().P95()*1000,
		res.DeadlineRate()*100, res.MeanAccuracy())
}
