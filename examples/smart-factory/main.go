// Smart factory: bursty quality-inspection traffic on heterogeneous line
// devices with hard accuracy floors. Inspection stations emit MMPP bursts
// (items arrive in batches), gateways cannot hold the big models, and the
// operator cares about the deadline miss rate per station. The example also
// demonstrates degraded-mode replanning when the factory uplink drops.
package main

import (
	"fmt"
	"log"
	"time"

	"edgesurgeon"
)

func main() {
	link := edgesurgeon.StaticLink("factory-wlan", edgesurgeon.Mbps(60), 3*time.Millisecond)
	sc := &edgesurgeon.Scenario{
		Servers: []edgesurgeon.Server{{
			Name:    "line-server",
			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
			Link:    link,
			RTT:     0.003,
		}},
	}

	type station struct {
		name   string
		model  string
		device string
		rate   float64
		burst  float64
		slo    time.Duration
		minAcc float64
	}
	stations := []station{
		// Solder-joint inspection: bursty, strict accuracy.
		{"solder-1", "resnet34", "jetson-nano", 5, 2, 250 * time.Millisecond, 0.74},
		{"solder-2", "resnet34", "jetson-nano", 5, 2, 250 * time.Millisecond, 0.74},
		// Label classification on phones used as cheap cameras.
		{"label-1", "resnet18", "phone-soc", 2, 2, 300 * time.Millisecond, 0.70},
		{"label-2", "resnet18", "phone-soc", 2, 2, 300 * time.Millisecond, 0.70},
		// Surface-defect detection on Pi gateways (heavy model, slow SLO).
		{"surface-1", "vgg16", "jetson-nano", 1.5, 2, 400 * time.Millisecond, 0.72},
		{"surface-2", "vgg16", "jetson-nano", 1.5, 2, 400 * time.Millisecond, 0.72},
		// Bin-presence check, latency-critical but easy.
		{"bin-1", "mobilenetv2", "phone-soc", 8, 2, 120 * time.Millisecond, 0},
		{"bin-2", "mobilenetv2", "phone-soc", 8, 2, 120 * time.Millisecond, 0},
	}
	for i, st := range stations {
		sc.Users = append(sc.Users, edgesurgeon.User{
			Name:   st.name,
			Model:  edgesurgeon.MustModel(st.model),
			Device: edgesurgeon.MustHardware(st.device),
			Rate:   st.rate,
			// Provision stability/deadline bounds for the burst-state
			// rate, not just the long-run mean, so MMPP bursts do not
			// overwhelm the planned queues.
			ProvisionRate: st.rate * st.burst,
			Deadline:      st.slo.Seconds(),
			MinAccuracy:   st.minAcc,
			Difficulty:    edgesurgeon.Bimodal, // mostly fine parts, a hard tail
			Arrivals:      edgesurgeon.MMPP,
			BurstFactor:   st.burst,
			Seed:          int64(500 + i),
		})
	}

	planner := edgesurgeon.NewPlanner()
	plan, res, err := edgesurgeon.PlanAndSimulate(sc, planner, 90, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== normal operation (60 Mbps uplink) ==")
	printPerStation(sc, plan, res)

	// The uplink degrades to 6 Mbps (interference). The online dispatcher
	// replans surgery + allocation without moving assignments.
	fmt.Println("\n== uplink degraded to 6 Mbps: dispatcher replans ==")
	disp, err := edgesurgeon.NewDispatcher(sc, planner)
	if err != nil {
		log.Fatal(err)
	}
	degraded, err := disp.ObserveUplinks([]float64{edgesurgeon.Mbps(6)})
	if err != nil {
		log.Fatal(err)
	}
	// Simulate the degraded epoch against a genuinely slow link.
	sc.Servers[0].Link = edgesurgeon.StaticLink("factory-wlan-degraded", edgesurgeon.Mbps(6), 3*time.Millisecond)
	resDegraded, err := edgesurgeon.Simulate(sc, degraded, 90, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}
	printPerStation(sc, degraded, resDegraded)

	// What if we had kept the stale plan?
	resStale, err := edgesurgeon.Simulate(sc, plan, 90, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstale plan on the degraded link: P95 %.0f ms, deadline %.1f%% (replanned: P95 %.0f ms, %.1f%%)\n",
		resStale.Latencies().P95()*1000, resStale.DeadlineRate()*100,
		resDegraded.Latencies().P95()*1000, resDegraded.DeadlineRate()*100)
}

func printPerStation(sc *edgesurgeon.Scenario, plan *edgesurgeon.Plan, res *edgesurgeon.SimResult) {
	fmt.Printf("%-10s %-6s %-22s %10s %10s %9s %8s\n",
		"station", "cut", "exits", "mean(ms)", "p95(ms)", "miss(%)", "acc")
	for i := range sc.Users {
		d := plan.Decisions[i]
		us := res.PerUser[i]
		miss := 100 * (1 - us.Deadline.Rate())
		fmt.Printf("%-10s %3d/%-2d %-22s %10.0f %10.0f %9.1f %8.3f\n",
			sc.Users[i].Name,
			d.Plan.Partition, d.Plan.Model.NumUnits(), fmt.Sprint(d.Plan.Exits),
			us.Latency.Mean()*1000, us.Latency.P95()*1000, miss, us.Accuracy.Mean())
	}
}
