// Quickstart: plan one camera's inference against one edge server and
// replay the decision in the simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"edgesurgeon"
)

func main() {
	// A Raspberry-Pi camera running ResNet18 at 3 frames/second with a
	// 300 ms latency SLO, next to a GPU edge server behind 40 Mbps Wi-Fi.
	sc := &edgesurgeon.Scenario{
		Servers: []edgesurgeon.Server{{
			Name:    "edge-gpu",
			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
			Link:    edgesurgeon.StaticLink("wifi", edgesurgeon.Mbps(40), 4*time.Millisecond),
			RTT:     0.004,
		}},
		Users: []edgesurgeon.User{{
			Name:       "camera-1",
			Model:      edgesurgeon.MustModel("resnet18"),
			Device:     edgesurgeon.MustHardware("rpi4"),
			Rate:       3,
			Deadline:   0.3,
			Difficulty: edgesurgeon.EasyBiased,
			Arrivals:   edgesurgeon.Poisson,
			Seed:       1,
		}},
	}

	// Joint optimization of model surgery + resource allocation.
	plan, err := edgesurgeon.NewPlanner().Plan(sc)
	if err != nil {
		log.Fatal(err)
	}
	d := plan.Decisions[0]
	fmt.Println("== planned decision ==")
	fmt.Printf("surgery plan: %s\n", d.Plan)
	fmt.Printf("assigned server: %d  compute share: %.2f  bandwidth share: %.2f\n",
		d.Server, d.ComputeShare, d.BandwidthShare)
	fmt.Printf("expected latency: %.1f ms  expected accuracy: %.3f\n",
		d.Latency()*1000, d.Eval.Accuracy)

	// Replay 60 seconds of traffic through the discrete-event simulator.
	res, err := edgesurgeon.Simulate(sc, plan, 60, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}
	lat := res.Latencies()
	fmt.Println("\n== simulated (60 s) ==")
	fmt.Printf("tasks: %d  mean: %.1f ms  P95: %.1f ms  P99: %.1f ms\n",
		len(res.Records), lat.Mean()*1000, lat.P95()*1000, lat.P99()*1000)
	fmt.Printf("deadline satisfaction: %.1f%%  mean accuracy: %.3f\n",
		res.DeadlineRate()*100, res.MeanAccuracy())

	// How does that compare against running everything on the Pi?
	for _, s := range edgesurgeon.Baselines() {
		bp, bres, err := edgesurgeon.PlanAndSimulate(sc, s, 60, edgesurgeon.DedicatedShares)
		if err != nil {
			log.Fatal(err)
		}
		_ = bp
		fmt.Printf("%-14s mean %.1f ms  deadline %.1f%%\n",
			s.Name(), bres.Latencies().Mean()*1000, bres.DeadlineRate()*100)
	}
}
