// Video analytics: a multi-camera surveillance deployment — the workload
// class the paper's introduction motivates. Twelve cameras with mixed
// detection/classification models and per-stream SLOs share two
// heterogeneous edge servers; the example compares the joint planner
// against every baseline and prints the per-camera decisions it made.
package main

import (
	"fmt"
	"log"
	"time"

	"edgesurgeon"
)

func main() {
	gpuLink := edgesurgeon.StaticLink("wifi-gpu", edgesurgeon.Mbps(50), 4*time.Millisecond)
	cpuLink := edgesurgeon.StaticLink("wifi-cpu", edgesurgeon.Mbps(30), 6*time.Millisecond)

	sc := &edgesurgeon.Scenario{
		Servers: []edgesurgeon.Server{
			{Name: "rack-gpu", Profile: edgesurgeon.MustHardware("edge-gpu-t4"), Link: gpuLink, RTT: 0.004},
			{Name: "rack-cpu", Profile: edgesurgeon.MustHardware("edge-cpu-16c"), Link: cpuLink, RTT: 0.006},
		},
	}

	// Camera fleet: entrance cameras run a detector (TinyYOLO) at strict
	// SLOs; aisle cameras classify (ResNet18); two old VGG16 pipelines
	// remain; a couple of battery cameras use MobileNetV2.
	type cam struct {
		name   string
		model  string
		device string
		fps    float64
		slo    time.Duration
		minAcc float64
	}
	fleet := []cam{
		{"entrance-1", "tinyyolo", "jetson-nano", 10, 150 * time.Millisecond, 0},
		{"entrance-2", "tinyyolo", "jetson-nano", 10, 150 * time.Millisecond, 0},
		{"aisle-1", "resnet18", "rpi4", 2, 300 * time.Millisecond, 0.70},
		{"aisle-2", "resnet18", "rpi4", 2, 300 * time.Millisecond, 0.70},
		{"aisle-3", "resnet18", "rpi4", 2, 300 * time.Millisecond, 0.70},
		{"aisle-4", "resnet18", "rpi4", 2, 300 * time.Millisecond, 0.70},
		{"legacy-1", "vgg16", "rpi4", 1, 800 * time.Millisecond, 0.72},
		{"legacy-2", "vgg16", "rpi4", 1, 800 * time.Millisecond, 0.72},
		{"battery-1", "mobilenetv2", "phone-soc", 6, 200 * time.Millisecond, 0},
		{"battery-2", "mobilenetv2", "phone-soc", 6, 200 * time.Millisecond, 0},
		{"dock-1", "alexnet", "phone-soc", 5, 250 * time.Millisecond, 0},
		{"dock-2", "alexnet", "phone-soc", 5, 250 * time.Millisecond, 0},
	}
	for i, c := range fleet {
		sc.Users = append(sc.Users, edgesurgeon.User{
			Name:        c.name,
			Model:       edgesurgeon.MustModel(c.model),
			Device:      edgesurgeon.MustHardware(c.device),
			Rate:        c.fps,
			Deadline:    c.slo.Seconds(),
			MinAccuracy: c.minAcc,
			Difficulty:  edgesurgeon.EasyBiased,
			Arrivals:    edgesurgeon.Poisson,
			Seed:        int64(100 + i),
		})
	}

	const horizon = 60.0
	planner := edgesurgeon.NewPlanner()
	plan, res, err := edgesurgeon.PlanAndSimulate(sc, planner, horizon, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== joint plan: per-camera decisions ==")
	for i, d := range plan.Decisions {
		srv := "local"
		if d.Server >= 0 {
			srv = sc.Servers[d.Server].Name
		}
		fmt.Printf("%-10s %-42s -> %-8s f=%.2f b=%.2f  exp %.0f ms  acc %.3f\n",
			sc.Users[i].Name, d.Plan.String(), srv,
			d.ComputeShare, d.BandwidthShare, d.Latency()*1000, d.Eval.Accuracy)
	}
	lat := res.Latencies()
	fmt.Printf("\nsimulated %d tasks over %.0fs: mean %.0f ms, P95 %.0f ms, deadline %.1f%%, accuracy %.3f\n",
		len(res.Records), horizon, lat.Mean()*1000, lat.P95()*1000,
		res.DeadlineRate()*100, res.MeanAccuracy())

	fmt.Println("\n== strategy comparison ==")
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "strategy", "mean(ms)", "p95(ms)", "p99(ms)", "deadline(%)")
	show := func(name string, r *edgesurgeon.SimResult) {
		l := r.Latencies()
		fmt.Printf("%-14s %10.0f %10.0f %10.0f %12.1f\n",
			name, l.Mean()*1000, l.P95()*1000, l.P99()*1000, r.DeadlineRate()*100)
	}
	show("joint", res)
	for _, s := range edgesurgeon.Baselines() {
		_, r, err := edgesurgeon.PlanAndSimulate(sc, s, horizon, edgesurgeon.DedicatedShares)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		show(s.Name(), r)
	}
}
