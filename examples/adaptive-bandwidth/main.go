// Adaptive bandwidth: a fleet on a fading wireless uplink. The example
// contrasts a static plan (computed once against the long-run mean rate)
// with the online dispatcher that replans surgery + allocation every epoch
// from the observed channel state — the runtime behaviour experiment E13
// quantifies.
package main

import (
	"fmt"
	"log"
	"time"

	"edgesurgeon"
)

func main() {
	const (
		horizon = 240.0
		epoch   = 20.0
	)
	// A three-state Markov channel: deep fade, mid, clear.
	link, err := edgesurgeon.FadingLink("wlan",
		[]float64{edgesurgeon.Mbps(2), edgesurgeon.Mbps(12), edgesurgeon.Mbps(45)},
		8*time.Second, time.Duration(horizon*2)*time.Second, 4*time.Millisecond, 42)
	if err != nil {
		log.Fatal(err)
	}

	build := func() *edgesurgeon.Scenario {
		sc := &edgesurgeon.Scenario{
			Servers: []edgesurgeon.Server{{
				Name: "edge-gpu", Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
				Link: link, RTT: 0.004,
			}},
			PlanningHorizon: horizon,
		}
		// Jetson nodes running heavy backbones can execute locally when
		// the channel fades and offload for speed when it clears — the
		// population whose best decision genuinely tracks the channel.
		models := []string{"vgg16", "vgg16", "resnet34", "vgg16", "resnet34", "mobilenetv2"}
		devices := []string{"jetson-nano", "jetson-nano", "jetson-nano", "jetson-nano", "jetson-nano", "phone-soc"}
		for i := 0; i < 6; i++ {
			minAcc := 0.755 // near-full accuracy: early exits cannot hide the decision
			if models[i] == "mobilenetv2" {
				minAcc = 0
			}
			sc.Users = append(sc.Users, edgesurgeon.User{
				Name:        fmt.Sprintf("node-%d", i),
				Model:       edgesurgeon.MustModel(models[i]),
				Device:      edgesurgeon.MustHardware(devices[i]),
				Rate:        2,
				Deadline:    0.4,
				MinAccuracy: minAcc,
				Difficulty:  edgesurgeon.EasyBiased,
				Arrivals:    edgesurgeon.Poisson,
				Seed:        int64(900 + i),
			})
		}
		return sc
	}

	// Static arm.
	scStatic := build()
	planner := edgesurgeon.NewPlanner()
	staticPlan, err := planner.Plan(scStatic)
	if err != nil {
		log.Fatal(err)
	}
	staticRes, err := edgesurgeon.Simulate(scStatic, staticPlan, horizon, edgesurgeon.DedicatedShares)
	if err != nil {
		log.Fatal(err)
	}

	// Online arm: observe each epoch's channel, replan, simulate epoch.
	scOnline := build()
	disp, err := edgesurgeon.NewDispatcher(scOnline, planner)
	if err != nil {
		log.Fatal(err)
	}
	var onlineLat []float64
	var met, total int
	fmt.Printf("%-10s %12s %14s\n", "epoch", "uplink(Mbps)", "offloading-users")
	for start := 0.0; start < horizon; start += epoch {
		plan, err := disp.ObserveWindow(start, epoch)
		if err != nil {
			log.Fatal(err)
		}
		offloading := 0
		for _, d := range plan.Decisions {
			if d.Plan.Partition < d.Plan.Model.NumUnits() {
				offloading++
			}
		}
		var obs float64
		for i := 0; i < 8; i++ {
			obs += link.RateAt(start + epoch*float64(i)/8)
		}
		obs /= 8
		fmt.Printf("t=%-8.0f %12.1f %14d\n", start, obs/1e6, offloading)

		res, err := edgesurgeon.Simulate(scOnline, plan, start+epoch, edgesurgeon.DedicatedShares)
		if err != nil {
			log.Fatal(err)
		}
		for i := range res.Records {
			rec := &res.Records[i]
			if rec.Arrival < start || rec.Arrival >= start+epoch {
				continue
			}
			onlineLat = append(onlineLat, rec.Latency)
			if rec.Deadline > 0 {
				total++
				if rec.Met {
					met++
				}
			}
		}
	}

	p := func(xs []float64, q float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		cp := append([]float64(nil), xs...)
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		idx := int(q * float64(len(cp)-1))
		return cp[idx]
	}
	sLat := staticRes.Latencies()
	fmt.Println("\n== static vs online ==")
	fmt.Printf("static : P50 %6.0f ms  P95 %7.0f ms  deadline %.1f%%\n",
		sLat.P50()*1000, sLat.P95()*1000, staticRes.DeadlineRate()*100)
	fmt.Printf("online : P50 %6.0f ms  P95 %7.0f ms  deadline %.1f%%\n",
		p(onlineLat, 0.5)*1000, p(onlineLat, 0.95)*1000, 100*float64(met)/float64(max(total, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
