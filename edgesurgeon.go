// Package edgesurgeon enables latency-sensitive DNN inference at the edge
// by jointly optimizing model surgery (early-exit selection, confidence
// thresholds and device/server partitioning) and resource allocation
// (per-user compute and bandwidth shares) across a heterogeneous edge
// cluster.
//
// It is a from-scratch reproduction of "Enabling Latency-Sensitive DNN
// Inference via Joint Optimization of Model Surgery and Resource Allocation
// in Heterogeneous Edge" (Huang, Dong, Shen, Wang, Guo, Fu — ICPP 2022);
// see DESIGN.md for the reconstruction methodology and EXPERIMENTS.md for
// the regenerated evaluation.
//
// # Quick start
//
//	sc := &edgesurgeon.Scenario{
//		Servers: []edgesurgeon.Server{{
//			Name:    "edge-gpu",
//			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
//			Link:    edgesurgeon.StaticLink("wifi", edgesurgeon.Mbps(40), 4*time.Millisecond),
//			RTT:     0.004,
//		}},
//		Users: []edgesurgeon.User{{
//			Name:   "camera-1",
//			Model:  edgesurgeon.MustModel("resnet18"),
//			Device: edgesurgeon.MustHardware("rpi4"),
//			Rate:   3, Deadline: 0.3,
//		}},
//	}
//	plan, err := edgesurgeon.NewPlanner().Plan(sc)
//	// plan.Decisions[0].Plan  -> exits/threshold/partition for camera-1
//	// plan.Decisions[0].ComputeShare, .BandwidthShare
//	res, err := edgesurgeon.Simulate(sc, plan, 60, edgesurgeon.DedicatedShares)
//
// The facade re-exports the library's stable surface; the implementation
// packages under internal/ follow the architecture in DESIGN.md:
// dnn (model zoo + cost arithmetic), hardware (device profiles), netmodel
// (links), workload (request streams), surgery (model surgery optimizer),
// alloc (share allocation), joint (the block-coordinate joint planner),
// baseline (comparison strategies), sim (discrete-event simulator),
// nn (a real trainable multi-exit network), experiments (the regenerated
// evaluation).
package edgesurgeon

import (
	"time"

	"edgesurgeon/internal/baseline"
	"edgesurgeon/internal/dnn"
	"edgesurgeon/internal/hardware"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/surgery"
	"edgesurgeon/internal/workload"
)

// Core planning types.
type (
	// Scenario is a complete planning problem: users, servers, curves.
	Scenario = joint.Scenario
	// User describes one inference application at the edge.
	User = joint.User
	// Server describes one edge server and its uplink.
	Server = joint.Server
	// Plan is a complete deployment decision.
	Plan = joint.Plan
	// Decision is the per-user slice of a Plan.
	Decision = joint.Decision
	// Strategy is anything that can plan a Scenario.
	Strategy = joint.Strategy
	// PlannerOptions tunes the joint planner. Parallelism bounds the
	// worker pool the planner fans per-user surgery across (<= 0 means
	// GOMAXPROCS); plans are byte-identical at every parallelism level.
	// ShardThreshold routes scenarios with at least that many users
	// through the hierarchical sharded planner (0 keeps every scenario on
	// the exact monolithic path).
	PlannerOptions = joint.Options
)

// ShareQuantum is the resolution of the planner's share-quantization grid:
// surgery environments are snapped to multiples of 1/ShareQuantum, which
// makes the planner's surgery memoization exact (a cache hit returns
// precisely what recomputation would).
const ShareQuantum = joint.ShareQuantum

// Model and hardware types.
type (
	// Model is a DNN described as a chain of partitionable units.
	Model = dnn.Model
	// HardwareProfile is a calibrated execution model for one machine.
	HardwareProfile = hardware.Profile
	// Link exposes a network link's capacity over virtual time.
	Link = netmodel.Link
)

// Surgery types.
type (
	// SurgeryPlan is one exit-set/threshold/partition decision.
	SurgeryPlan = surgery.Plan
	// SurgeryEval is the analytic evaluation of a SurgeryPlan.
	SurgeryEval = surgery.Eval
	// SurgeryEnv is the environment a SurgeryPlan is evaluated against.
	SurgeryEnv = surgery.Env
	// ExitCurves calibrates exit confidence/accuracy behaviour.
	ExitCurves = surgery.ExitCurves
)

// Simulation types.
type (
	// SimResult carries per-task records and aggregates.
	SimResult = sim.Result
	// SimDiscipline selects how server capacity is divided.
	SimDiscipline = sim.Discipline
)

// Simulation disciplines.
const (
	// DedicatedShares gives each user a private lane at its allocated
	// share (the GPS idealization the planner assumes).
	DedicatedShares = sim.DedicatedShares
	// SharedFCFS serializes all users through one full-speed queue.
	SharedFCFS = sim.SharedFCFS
	// ProcessorSharing runs each server as an egalitarian
	// processor-sharing fluid (GPU time-slicer model).
	ProcessorSharing = sim.ProcessorSharing
)

// Difficulty distributions for User.Difficulty.
const (
	UniformDifficulty = workload.UniformDifficulty
	EasyBiased        = workload.EasyBiased
	HardBiased        = workload.HardBiased
	Bimodal           = workload.Bimodal
)

// Arrival processes for User.Arrivals.
const (
	Poisson  = workload.Poisson
	MMPP     = workload.MMPP
	Periodic = workload.Periodic
)

// NewPlanner returns the joint surgery + allocation + assignment planner
// (the paper's contribution) with default options.
func NewPlanner() *joint.Planner { return &joint.Planner{} }

// NewPlannerWith returns the joint planner with explicit options.
func NewPlannerWith(opt PlannerOptions) *joint.Planner { return &joint.Planner{Opt: opt} }

// Baselines returns the comparison strategies used by the evaluation:
// local-only, edge-only, Neurosurgeon-style partitioning, BranchyNet-style
// on-device exits, and a seeded random planner.
func Baselines() []Strategy {
	return []Strategy{
		baseline.LocalOnly{},
		baseline.EdgeOnly{},
		baseline.Neurosurgeon{},
		baseline.BranchyLocal{},
		baseline.Random{Seed: 1},
	}
}

// Zoo returns fresh instances of every model in the zoo (AlexNet, VGG16,
// ResNet18/34, MobileNetV2, TinyYOLO).
func Zoo() []*Model { return dnn.Zoo() }

// Models lists the zoo model names.
func Models() []string { return dnn.ZooNames() }

// ModelByName returns the zoo model with the given name.
func ModelByName(name string) (*Model, error) { return dnn.ByName(name) }

// MustModel is ModelByName that panics on unknown names; for examples and
// tests.
func MustModel(name string) *Model {
	m, err := dnn.ByName(name)
	if err != nil {
		panic(err)
	}
	return m
}

// Hardware returns the built-in machine catalog.
func Hardware() []*HardwareProfile { return hardware.Catalog() }

// HardwareByName returns the catalog profile with the given name.
func HardwareByName(name string) (*HardwareProfile, error) { return hardware.ByName(name) }

// MustHardware is HardwareByName that panics on unknown names.
func MustHardware(name string) *HardwareProfile {
	p, err := hardware.ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Mbps converts megabits/second to the bits/second the link models use.
func Mbps(v float64) float64 { return netmodel.Mbps(v) }

// StaticLink builds a constant-rate link.
func StaticLink(name string, rateBps float64, rtt time.Duration) Link {
	return netmodel.NewStatic(name, rateBps, rtt.Seconds())
}

// FadingLink builds a seeded Markov-fading link alternating among the given
// state capacities with exponentially distributed dwell times.
func FadingLink(name string, statesBps []float64, meanDwell, horizon time.Duration, rtt time.Duration, seed int64) (Link, error) {
	return netmodel.NewFading(name, netmodel.FadingConfig{
		States:    statesBps,
		MeanDwell: meanDwell.Seconds(),
		Horizon:   horizon.Seconds(),
		RTT:       rtt.Seconds(),
		Seed:      seed,
	})
}

// OptimizeSurgery runs the single-user surgery optimizer: the
// minimum-expected-latency exit set, threshold and partition point for one
// model in one environment, subject to the options' accuracy floor.
func OptimizeSurgery(m *Model, env SurgeryEnv, opt surgery.Options) (SurgeryPlan, SurgeryEval, error) {
	return surgery.Optimize(m, env, opt)
}

// SurgeryOptions re-exports the surgery optimizer's options.
type SurgeryOptions = surgery.Options

// FreePartition lets OptimizeSurgery sweep all partition points.
const FreePartition = surgery.FreePartition

// DefaultCurves returns the calibrated exit confidence/accuracy curves used
// throughout the evaluation.
func DefaultCurves() ExitCurves { return surgery.DefaultCurves() }

// MeasuredPoint is one (depth, accuracy) profiling observation from a real
// multi-exit network, consumed by FitAccuracyCurve.
type MeasuredPoint = surgery.MeasuredPoint

// FitAccuracyCurve calibrates the planner's parametric accuracy family to
// profiling measurements of a real multi-exit network (e.g. from
// nn.MultiExit.Evaluate across thresholds). Returns the fitted curves and
// the RMSE of the fit; assign the curves to Scenario.Curves so the planner
// optimizes against the measured behaviour.
func FitAccuracyCurve(points []MeasuredPoint, finalAccuracy float64) (ExitCurves, float64, error) {
	return surgery.FitAccuracyCurve(points, finalAccuracy)
}

// Simulate replays a plan through the discrete-event simulator for the
// given horizon (seconds).
func Simulate(sc *Scenario, plan *Plan, horizon float64, d SimDiscipline) (*SimResult, error) {
	return joint.Simulate(sc, plan, horizon, d)
}

// PlanAndSimulate plans the scenario with the strategy and replays the
// result in the simulator.
func PlanAndSimulate(sc *Scenario, s Strategy, horizon float64, d SimDiscipline) (*Plan, *SimResult, error) {
	return joint.PlanAndSimulate(sc, s, horizon, d)
}

// NewDispatcher plans the scenario and returns the online dispatcher,
// which replans surgery + allocation when observed uplink rates drift.
func NewDispatcher(sc *Scenario, p *joint.Planner) (*joint.Dispatcher, error) {
	return joint.NewDispatcher(sc, p)
}

// Dispatcher is the online replanning layer.
type Dispatcher = joint.Dispatcher
