module edgesurgeon

go 1.22
