// Command zoo inspects the built-in model zoo and hardware catalog: layer
// tables, exit candidates, per-device latency estimates and the analytic
// surgery profile of any model.
//
// Usage:
//
//	zoo                          # list models and hardware
//	zoo -model resnet18          # per-unit breakdown
//	zoo -model vgg16 -device rpi4 -server edge-gpu-t4 -mbps 20
//	                             # surgery profile: per-cut latency split
package main

import (
	"flag"
	"fmt"
	"os"

	"edgesurgeon/internal/dnn"
	"edgesurgeon/internal/hardware"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/stats"
	"edgesurgeon/internal/surgery"
	"edgesurgeon/internal/workload"
)

func main() {
	var (
		model  = flag.String("model", "", "model to inspect")
		device = flag.String("device", "", "device profile for timing")
		server = flag.String("server", "", "server profile for the surgery table")
		mbps   = flag.Float64("mbps", 20, "uplink Mbps for the surgery table")
	)
	flag.Parse()

	if *model == "" {
		listEverything()
		return
	}
	m, err := dnn.ByName(*model)
	if err != nil {
		fatal(err)
	}
	fmt.Print(m.Summary())

	if *device == "" {
		return
	}
	dev, err := hardware.ByName(*device)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nfull inference on %s: %.2f ms (fits: %v)\n",
		dev.Name, dev.ModelTime(m)*1000, dev.FitsModel(m))

	if *server == "" {
		return
	}
	srv, err := hardware.ByName(*server)
	if err != nil {
		fatal(err)
	}
	env := surgery.Env{
		Device: dev, Server: srv,
		ComputeShare: 1, UplinkBps: netmodel.Mbps(*mbps), BandwidthShare: 1,
		RTT: 0.004, Difficulty: workload.UniformDifficulty,
	}
	t := stats.NewTable(fmt.Sprintf("Partition profile %s: %s -> %s @ %g Mbps", m.Name, dev.Name, srv.Name, *mbps),
		"cut", "device(ms)", "tx(ms)", "server(ms)", "total(ms)")
	for p := 0; p <= m.NumUnits(); p++ {
		plan := surgery.Plan{Model: m, Partition: p}
		ev, err := surgery.Evaluate(plan, env)
		if err != nil {
			fatal(err)
		}
		t.AddRow(p, ev.DeviceSec*1000, ev.TxSec*1000, ev.ServerSec*1000, ev.Latency*1000)
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
	plan, ev, err := surgery.Optimize(m, env, surgery.Options{FixedPartition: surgery.FreePartition})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\noptimal surgery plan: %s  expected %.2f ms, accuracy %.3f\n",
		plan, ev.Latency*1000, ev.Accuracy)
}

func listEverything() {
	t := stats.NewTable("Model zoo", "model", "units", "GFLOPs", "Mparams", "exits")
	for _, m := range dnn.Zoo() {
		t.AddRow(m.Name, m.NumUnits(), float64(m.TotalFLOPs())/1e9,
			float64(m.TotalParams())/1e6, len(m.ExitCandidates()))
	}
	t.Render(os.Stdout)
	fmt.Println()
	h := stats.NewTable("Hardware catalog", "name", "class", "peak-GFLOPS", "mem(GB)")
	for _, p := range hardware.Catalog() {
		h.AddRow(p.Name, p.Class.String(), p.PeakFLOPS/1e9, float64(p.MemBytes)/(1<<30))
	}
	h.Render(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "zoo:", err)
	os.Exit(1)
}
