// Command edgesim plans and simulates one edge-inference deployment
// described by a JSON scenario file.
//
// Usage:
//
//	edgesim -scenario deploy.json                 # joint planner
//	edgesim -scenario deploy.json -strategy edge-only
//	edgesim -scenario deploy.json -compare        # all strategies
//	edgesim -example                              # print a sample scenario
//
// The scenario schema is documented in internal/config.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"edgesurgeon/internal/config"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/stats"
)

const exampleScenario = `{
  "horizon": 60,
  "servers": [
    {"name": "edge-gpu", "profile": "edge-gpu-t4", "uplinkMbps": 40, "rttMs": 4},
    {"name": "edge-cpu", "profile": "edge-cpu-16c", "uplinkMbps": 25, "rttMs": 6}
  ],
  "users": [
    {"name": "cam1", "model": "resnet18", "device": "rpi4", "rate": 3,
     "deadlineMs": 300, "difficulty": "easy-biased"},
    {"name": "cam2", "model": "vgg16", "device": "rpi4", "rate": 1,
     "deadlineMs": 500, "difficulty": "easy-biased"},
    {"name": "drone", "model": "mobilenetv2", "device": "jetson-nano", "rate": 10,
     "deadlineMs": 100, "minAccuracy": 0.7},
    {"name": "phone", "model": "alexnet", "device": "phone-soc", "rate": 2,
     "deadlineMs": 250, "arrivals": "mmpp", "burstFactor": 4}
  ]
}`

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "path to JSON scenario")
		strategy     = flag.String("strategy", "joint", "planning strategy")
		compare      = flag.Bool("compare", false, "run every strategy and compare")
		example      = flag.Bool("example", false, "print an example scenario and exit")
		verbose      = flag.Bool("v", false, "print per-user decisions")
		discipline   = flag.String("discipline", "shares", "service discipline: shares | fcfs | ps")
		tracePath    = flag.String("trace", "", "write per-task records (JSON lines) to this file")
		parallelism  = flag.Int("parallelism", 0, "simulation worker count (0 = GOMAXPROCS, 1 = sequential)")
		keepRecords  = flag.Bool("keep-records", true, "retain per-task records; disable for very large -users runs")
		users        = flag.Int("users", 0, "scale the scenario to this many users by cycling its user list (0 = as written)")
	)
	flag.Parse()

	var disc sim.Discipline
	switch *discipline {
	case "shares":
		disc = sim.DedicatedShares
	case "fcfs":
		disc = sim.SharedFCFS
	case "ps":
		disc = sim.ProcessorSharing
	default:
		fmt.Fprintf(os.Stderr, "edgesim: unknown discipline %q (shares | fcfs | ps)\n", *discipline)
		os.Exit(2)
	}

	if *example {
		fmt.Println(exampleScenario)
		return
	}
	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "edgesim: -scenario required (try -example)")
		os.Exit(2)
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	sc, horizon, err := config.Parse(data)
	if err != nil {
		fatal(err)
	}
	if *users > 0 {
		scaleUsers(sc, *users)
	}
	if *tracePath != "" && !*keepRecords {
		fmt.Fprintln(os.Stderr, "edgesim: -trace requires -keep-records=true")
		os.Exit(2)
	}

	names := []string{*strategy}
	if *compare {
		names = config.StrategyNames()
	}
	t := stats.NewTable("Results over "+fmt.Sprintf("%.0fs (%s, %d users)", horizon, *discipline, len(sc.Users)),
		"strategy", "objective", "feasible", "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "deadline-rate", "mean-acc", "energy(J/task)", "events/sec")
	for _, name := range names {
		s, err := config.Strategy(name)
		if err != nil {
			fatal(err)
		}
		plan, err := s.Plan(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: %s: %v\n", name, err)
			continue
		}
		cfg := joint.BuildSimConfig(sc, plan, horizon, disc)
		cfg.Parallelism = *parallelism
		cfg.KeepRecords = *keepRecords
		t0 := time.Now()
		res, err := sim.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgesim: %s: %v\n", name, err)
			continue
		}
		eps := float64(res.Events) / time.Since(t0).Seconds()
		lat := res.Latencies()
		t.AddRow(name, plan.Objective, plan.Feasible,
			lat.Mean()*1000, lat.P50()*1000, lat.P95()*1000, lat.P99()*1000,
			res.DeadlineRate(), res.MeanAccuracy(), res.MeanDeviceEnergy(), eps)
		if *tracePath != "" && !*compare {
			if err := writeTrace(*tracePath, res); err != nil {
				fatal(err)
			}
		}
		if *verbose {
			fmt.Printf("-- %s decisions --\n", name)
			for i, d := range plan.Decisions {
				fmt.Printf("  %-8s %-40s server=%d f=%.3f b=%.3f expLat=%.1fms acc=%.3f\n",
					sc.Users[i].Name, d.Plan.String(), d.Server,
					d.ComputeShare, d.BandwidthShare, d.Latency()*1000, d.Eval.Accuracy)
			}
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// scaleUsers grows (or shrinks) the scenario's population to n by cycling
// the parsed user list with fresh names and seeds, so a small JSON scenario
// reproduces the E21-style heavy-traffic regime from the CLI.
func scaleUsers(sc *joint.Scenario, n int) {
	base := len(sc.Users)
	if base == 0 || n <= base {
		sc.Users = sc.Users[:n]
		return
	}
	for i := base; i < n; i++ {
		u := sc.Users[i%base]
		u.Name = fmt.Sprintf("%s+%d", u.Name, i/base)
		u.Seed += int64(7919 * (i / base))
		sc.Users = append(sc.Users, u)
	}
}

func writeTrace(path string, res *sim.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for i := range res.Records {
		if err := enc.Encode(&res.Records[i]); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "edgesim:", err)
	os.Exit(1)
}
