// Command experiments regenerates the reconstructed evaluation artifacts
// (tables and figures E1-E13; see DESIGN.md for the index).
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E3,E10     # run a subset
//	experiments -list           # list experiments
//	experiments -csv dir        # also export every table as CSV into dir
//	experiments -run E21 -bench-json BENCH_sim.json   # perf trajectory
//	experiments -run E23 -quick -bench-json BENCH_planner.json \
//	    -require-metrics E23.speedup_vs_monolithic,E23.gap_worst_pct   # CI smoke
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"edgesurgeon/internal/experiments"
	"edgesurgeon/internal/telemetry"
)

func main() {
	var (
		runList    = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir     = flag.String("csv", "", "directory to export tables as CSV")
		benchJSON  = flag.String("bench-json", "", "write machine-readable metrics (events/sec, speedups, allocs) of the experiments that report them to this JSON file")
		quick      = flag.Bool("quick", false, "substitute CI-sized variants for experiments that define one (same metric keys, shrunken inputs)")
		requireStr = flag.String("require-metrics", "", "comma-separated EID.metric keys that must be present in the collected metrics; missing keys exit non-zero (CI guard for -bench-json consumers)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}()
	}

	reg := experiments.Registry()
	if *quick {
		for id, runner := range experiments.QuickVariants() {
			reg[id] = runner
		}
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *runList != "" {
		ids = strings.Split(*runList, ",")
	}
	metrics := map[string]map[string]float64{}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := runner()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := exportCSV(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "csv export: %v\n", err)
				os.Exit(1)
			}
		}
		if len(rep.Metrics) > 0 {
			metrics[rep.ID] = rep.Metrics
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, metrics); err != nil {
			fmt.Fprintf(os.Stderr, "bench json: %v\n", err)
			os.Exit(1)
		}
	}
	if *requireStr != "" {
		if err := requireMetrics(metrics, strings.Split(*requireStr, ",")); err != nil {
			fmt.Fprintf(os.Stderr, "require-metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

// requireMetrics checks that every "EID.metric" key was actually collected —
// the CI guard that keeps a refactor from silently dropping a benchmark
// scalar that dashboards or regression gates consume.
func requireMetrics(metrics map[string]map[string]float64, keys []string) error {
	for _, key := range keys {
		key = strings.TrimSpace(key)
		if key == "" {
			continue
		}
		id, name, ok := strings.Cut(key, ".")
		if !ok {
			return fmt.Errorf("malformed key %q (want EID.metric)", key)
		}
		if _, found := metrics[id][name]; !found {
			return fmt.Errorf("metric %q missing from the collected results (experiment not run, or key renamed)", key)
		}
	}
	return nil
}

// writeBenchJSON records the perf-trajectory scalars (E21's events/sec,
// speedup, allocs/event, cores) keyed by experiment ID. An existing file
// is merged, not clobbered: experiments this invocation ran replace their
// own entries and every other experiment's entry survives, so the
// planner-smoke (E23) and frontier-smoke (E24) CI steps can share one
// BENCH_planner.json.
func writeBenchJSON(path string, metrics map[string]map[string]float64) error {
	merged := map[string]map[string]float64{}
	if prev, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(prev, &merged); err != nil {
			return fmt.Errorf("existing %s is not a bench-json file: %w", path, err)
		}
	}
	for id, m := range metrics {
		merged[id] = m
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	// Atomic write: a CI step killed mid-write must not leave a truncated
	// JSON file that poisons the next run's read-merge-write cycle.
	return telemetry.WriteFileAtomic(path, append(data, '\n'), 0o644)
}

func exportCSV(dir string, rep *experiments.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range rep.Tables {
		name := fmt.Sprintf("%s_%d.csv", strings.ToLower(rep.ID), i)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
