// Command edgeserved is the online serving control plane around one
// deployment: it records cluster telemetry traces and replays them through
// the serve.Runtime, reporting every replan decision the hysteresis policy
// made.
//
// Usage:
//
//	edgeserved -scenario deploy.json -record trace.jsonl -horizon 240 -period 5 \
//	    -fault crash:1:60:100                 # record a telemetry trace
//	edgeserved -scenario deploy.json -trace trace.jsonl -policy hysteresis
//	edgeserved -scenario deploy.json -trace trace.jsonl -policy hysteresis \
//	    -expect-full-replans 3                # CI smoke: pin the replan count
//	edgeserved -scenario deploy.json -trace trace.jsonl -http :8080
//	    # then: curl localhost:8080/metrics ; curl localhost:8080/plan
//	edgeserved -scenario deploy.json -trace trace.jsonl -snapshot-dir state/ \
//	    -chaos crash:3 -chaos crash:8 -verify-recovery
//	    # chaos replay: kill/recover after samples 3 and 8, then assert the
//	    # run was byte-identical to one that never crashed
//	edgeserved -scenario deploy.json -trace trace.jsonl -snapshot-dir state/ -recover
//	    # resume a crashed replay from its snapshot + WAL
//	edgeserved -scenario deploy.json -listen 127.0.0.1:0 -timescale 0.002 \
//	    -requests 200 -min-ok-frac 0.95
//	    # live mode: spawn one edgeagent process per server, serve the wire
//	    # protocol over TCP, drive a bounded closed loop, gate the exit code
//	edgeserved -scenario deploy.json -listen 127.0.0.1:7443 -http :8080
//	    # live mode without -requests: serve clients until interrupted,
//	    # /metrics and /plan live on :8080 the whole time
//	edgeserved -scenario deploy.json -listen 127.0.0.1:0 -timescale 0.002 \
//	    -requests 200 -stall-clients 2 -min-ok-frac 0.95
//	    # backpressure smoke: two stalled clients alongside the closed loop;
//	    # the dispatcher sheds their responses without denting the drive
//
// The scenario schema is documented in internal/config; the trace format is
// JSON lines, one telemetry.Sample per line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"edgesurgeon/internal/config"
	"edgesurgeon/internal/faults"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/serve"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/telemetry"
)

// faultFlags collects repeatable -fault specs of the form
// kind:server:start:end[:factor], e.g. crash:1:60:100 or brownout:0:30:90:0.5.
type faultFlags struct {
	windows []faults.Window
}

func (f *faultFlags) String() string { return fmt.Sprintf("%d faults", len(f.windows)) }

func (f *faultFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 4 || len(parts) > 5 {
		return fmt.Errorf("want kind:server:start:end[:factor], got %q", spec)
	}
	var w faults.Window
	switch parts[0] {
	case "crash":
		w.Kind = faults.ServerCrash
	case "outage":
		w.Kind = faults.LinkOutage
	case "brownout":
		w.Kind = faults.Brownout
	default:
		return fmt.Errorf("unknown fault kind %q (crash | outage | brownout)", parts[0])
	}
	var err error
	if w.Server, err = strconv.Atoi(parts[1]); err != nil {
		return fmt.Errorf("server index %q: %w", parts[1], err)
	}
	if w.Start, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return fmt.Errorf("start %q: %w", parts[2], err)
	}
	if w.End, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return fmt.Errorf("end %q: %w", parts[3], err)
	}
	if len(parts) == 5 {
		if w.Factor, err = strconv.ParseFloat(parts[4], 64); err != nil {
			return fmt.Errorf("factor %q: %w", parts[4], err)
		}
	}
	if err := w.Validate(); err != nil {
		return err
	}
	f.windows = append(f.windows, w)
	return nil
}

// chaosFlags collects repeatable -chaos specs:
//
//	crash:I             kill the control plane after ingesting sample I,
//	                    then recover it from -snapshot-dir and continue
//	slow:FROM:TO:FACTOR planner speed FACTOR over samples [FROM, TO)
//	corrupt:I:KIND      mangle sample I; KIND is nan | negative | time | width
type chaosFlags struct {
	events []faults.ChaosEvent
}

func (c *chaosFlags) String() string { return fmt.Sprintf("%d chaos events", len(c.events)) }

func (c *chaosFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	atoi := func(s string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("sample ordinal %q: %w", s, err)
		}
		return v, nil
	}
	var e faults.ChaosEvent
	var err error
	switch parts[0] {
	case "crash":
		if len(parts) != 2 {
			return fmt.Errorf("want crash:I, got %q", spec)
		}
		e.Kind = faults.CrashAfterSample
		if e.Sample, err = atoi(parts[1]); err != nil {
			return err
		}
	case "slow":
		if len(parts) != 4 {
			return fmt.Errorf("want slow:FROM:TO:FACTOR, got %q", spec)
		}
		e.Kind = faults.SlowPlanner
		if e.Sample, err = atoi(parts[1]); err != nil {
			return err
		}
		if e.Until, err = atoi(parts[2]); err != nil {
			return err
		}
		if e.Factor, err = strconv.ParseFloat(parts[3], 64); err != nil {
			return fmt.Errorf("factor %q: %w", parts[3], err)
		}
	case "corrupt":
		if len(parts) != 3 {
			return fmt.Errorf("want corrupt:I:KIND, got %q", spec)
		}
		e.Kind = faults.CorruptSample
		if e.Sample, err = atoi(parts[1]); err != nil {
			return err
		}
		switch parts[2] {
		case "nan":
			e.Corrupt = faults.CorruptNaN
		case "negative":
			e.Corrupt = faults.CorruptNegative
		case "time":
			e.Corrupt = faults.CorruptTimeRegression
		case "width":
			e.Corrupt = faults.CorruptWidth
		default:
			return fmt.Errorf("unknown corruption %q (nan | negative | time | width)", parts[2])
		}
	default:
		return fmt.Errorf("unknown chaos kind %q (crash | slow | corrupt)", parts[0])
	}
	if err := e.Validate(); err != nil {
		return err
	}
	c.events = append(c.events, e)
	return nil
}

func main() {
	var faultSpecs faultFlags
	var chaosSpecs chaosFlags
	var (
		scenarioPath = flag.String("scenario", "", "path to JSON scenario (required)")
		recordPath   = flag.String("record", "", "record a telemetry trace to this file and exit")
		horizon      = flag.Float64("horizon", 0, "recording horizon in seconds (0 = scenario horizon)")
		period       = flag.Float64("period", 5, "recording sample period in seconds")
		tracePath    = flag.String("trace", "", "replay this telemetry trace through the control plane")
		policyName   = flag.String("policy", "hysteresis", "replan policy: always | hysteresis | never")
		relChange    = flag.Float64("rel-change", -1, "override: min relative uplink drift for a full replan")
		minInterval  = flag.Float64("min-interval", -1, "override: min seconds between full replans")
		budget       = flag.Int("replan-budget", -1, "override: max full replans per trailing window")
		budgetWindow = flag.Float64("budget-window", -1, "override: trailing budget window in seconds")
		journalPath  = flag.String("journal", "", "write the replan-decision journal here (\"-\" = stdout)")
		expectFull   = flag.Int("expect-full-replans", -1, "exit non-zero unless the replay ran exactly this many full replans")
		httpAddr     = flag.String("http", "", "serve /metrics and /plan on this address (after the replay, or alongside live mode)")
		parallelism  = flag.Int("parallelism", 0, "planner worker count (0 = GOMAXPROCS); plans are identical across levels")
		shardThresh  = flag.Int("shard-threshold", 0, "route full replans of scenarios with at least this many users through the hierarchical sharded planner (0 = always monolithic)")
		frontier     = flag.Bool("frontier", false, "precompute Pareto-frontier surgery tables per planned scenario (see serve.frontier.* metrics); plans follow the tables' geometric share grid")

		snapshotDir = flag.String("snapshot-dir", "", "persist snapshot + WAL state in this directory (crash-safe replay)")
		recoverRun  = flag.Bool("recover", false, "recover the control plane from -snapshot-dir and continue the trace from where it crashed")
		verifyRec   = flag.Bool("verify-recovery", false, "after a chaos replay with crashes, rerun without the crashes and exit non-zero unless journal, metrics and final plan are byte-identical")

		deltaReplan   = flag.Bool("delta-replan", false, "route qualifying replans through the incremental delta planner: only drifted servers' shards are re-planned, warm-started from the active plan (same hysteresis gates and deadline budget as full replans)")
		deltaDirtyMax = flag.Float64("delta-dirty-frac", -1, "override: max fraction of servers that may be dirty for a delta replan; wider drift falls back to a full replan (default 0.5)")

		replanDeadline = flag.Float64("replan-deadline", -1, "override: virtual-seconds deadline for one full replan (0 = unbounded); an over-deadline replan aborts and keeps serving the stale plan")
		qStrikes       = flag.Int("quarantine-strikes", -1, "override: consecutive validation failures before a telemetry source is quarantined (0 = off)")
		qProbation     = flag.Float64("quarantine-probation", -1, "override: virtual seconds a quarantined source stays muted")

		listenAddr  = flag.String("listen", "", "live mode: run the wire dispatcher on this TCP address with one edgeagent process per server")
		agents      = flag.Int("agents", 0, "live mode: local agent process count (0 = one per scenario server, -1 = spawn none and wait for remote edgeagent processes to dial in)")
		agentBin    = flag.String("agent-bin", "", "live mode: prebuilt edgeagent binary (empty = go build one)")
		requests    = flag.Int("requests", 0, "live mode: drive this many closed-loop requests then exit (0 = serve until interrupted)")
		workers     = flag.Int("workers", 4, "live mode: closed-loop client concurrency")
		timeScale   = flag.Float64("timescale", 1, "live mode: wall-seconds per model-second for every process")
		telemPeriod = flag.Float64("telemetry-period", 2, "live mode: agent telemetry period in model-seconds")
		minOKFrac   = flag.Float64("min-ok-frac", 0, "live mode: exit non-zero unless at least this fraction of driven requests succeed")
		clusterSeed = flag.Int64("seed", 42, "live mode: partition-crossing sampler seed")
		stallCount  = flag.Int("stall-clients", 0, "live mode: also connect this many stalled clients (handshake, burst requests, never read) to exercise backpressure shedding")

		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Var(&faultSpecs, "fault", "fault window kind:server:start:end[:factor] (repeatable, record mode)")
	flag.Var(&chaosSpecs, "chaos", "chaos event crash:I | slow:FROM:TO:FACTOR | corrupt:I:KIND (repeatable, replay mode)")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "edgeserved: -scenario required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	sc, scHorizon, err := config.Parse(data)
	if err != nil {
		fatal(err)
	}

	switch {
	case *listenAddr != "":
		policy, err := buildPolicy(*policyName, *relChange, *minInterval, *budget, *budgetWindow,
			*replanDeadline, *qStrikes, *qProbation)
		if err != nil {
			fatal(err)
		}
		if *deltaReplan {
			policy.DeltaReplan = true
		}
		if *deltaDirtyMax >= 0 {
			policy.DeltaMaxDirtyFrac = *deltaDirtyMax
		}
		if err := policy.Validate(); err != nil {
			fatal(err)
		}
		err = runCluster(sc, data, policy, clusterOpts{
			listen: *listenAddr, agents: *agents, agentBin: *agentBin,
			requests: *requests, workers: *workers,
			timeScale: *timeScale, telemetryPeriod: *telemPeriod,
			minOKFrac: *minOKFrac, frontier: *frontier, seed: *clusterSeed,
			stallClients: *stallCount, httpAddr: *httpAddr,
		})
		if err != nil {
			fatal(err)
		}
	case *recordPath != "":
		if err := record(sc, scHorizon, *recordPath, *horizon, *period, faultSpecs.windows); err != nil {
			fatal(err)
		}
	case *tracePath != "":
		policy, err := buildPolicy(*policyName, *relChange, *minInterval, *budget, *budgetWindow,
			*replanDeadline, *qStrikes, *qProbation)
		if err != nil {
			fatal(err)
		}
		if *deltaReplan {
			policy.DeltaReplan = true
		}
		if *deltaDirtyMax >= 0 {
			policy.DeltaMaxDirtyFrac = *deltaDirtyMax
		}
		if err := policy.Validate(); err != nil {
			fatal(err)
		}
		opts := replayOpts{
			tracePath: *tracePath, journalPath: *journalPath,
			expectFull: *expectFull, httpAddr: *httpAddr,
			parallelism: *parallelism, shardThreshold: *shardThresh, frontier: *frontier,
			snapshotDir: *snapshotDir, recover: *recoverRun,
			chaos: chaosSpecs.events, verifyRecovery: *verifyRec,
		}
		if err := replay(sc, policy, opts); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "edgeserved: need -record, -trace, or -listen")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgeserved: %v\n", err)
	os.Exit(1)
}

// startProfiles starts a CPU profile and/or arranges a heap profile dump,
// returning a stop function main defers. Both writers are stdlib
// runtime/pprof — no extra dependencies, matching the repo's
// no-new-modules rule.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		}
	}, nil
}

// record samples the scenario's own links (and the optional fault windows)
// into a JSONL telemetry trace — the offline stand-in for a live cluster's
// periodic probes.
func record(sc *joint.Scenario, scHorizon float64, path string, horizon, period float64, windows []faults.Window) error {
	if horizon <= 0 {
		horizon = scHorizon
	}
	servers := make([]sim.ServerConfig, len(sc.Servers))
	for i, s := range sc.Servers {
		servers[i] = sim.ServerConfig{Profile: s.Profile, Link: s.Link}
	}
	var sched *faults.Schedule
	if len(windows) > 0 {
		var err error
		if sched, err = faults.New(windows...); err != nil {
			return err
		}
	}
	trace, err := sim.RecordTrace(servers, sched, horizon, period)
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.EncodeTrace(out, trace); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d samples over %gs (period %gs, %d fault windows) to %s\n",
		len(trace), horizon, period, len(windows), path)
	return nil
}

func buildPolicy(name string, relChange, minInterval float64, budget int, window,
	replanDeadline float64, qStrikes int, qProbation float64) (serve.Policy, error) {
	var p serve.Policy
	switch name {
	case "always":
		p = serve.AlwaysReplan()
	case "hysteresis":
		p = serve.Hysteresis()
	case "never":
		p = serve.NeverReplan()
	default:
		return p, fmt.Errorf("unknown policy %q (always | hysteresis | never)", name)
	}
	if relChange >= 0 {
		p.RelChange = relChange
	}
	if minInterval >= 0 {
		p.MinInterval = minInterval
	}
	if budget >= 0 {
		p.Budget = budget
	}
	if window >= 0 {
		p.Window = window
	}
	if replanDeadline >= 0 {
		p.ReplanDeadline = replanDeadline
	}
	if qStrikes >= 0 {
		p.QuarantineStrikes = qStrikes
	}
	if qProbation >= 0 {
		p.QuarantineProbation = qProbation
	}
	return p, p.Validate()
}

// replayOpts bundles the replay-mode configuration.
type replayOpts struct {
	tracePath, journalPath string
	expectFull             int
	httpAddr               string
	parallelism            int
	shardThreshold         int
	frontier               bool

	snapshotDir    string
	recover        bool
	chaos          []faults.ChaosEvent
	verifyRecovery bool
}

// replay drives the recorded trace through the control plane — fresh,
// recovered from a snapshot directory, or under a chaos schedule — and
// reports what the policy decided.
func replay(sc *joint.Scenario, policy serve.Policy, o replayOpts) error {
	in, err := os.Open(o.tracePath)
	if err != nil {
		return err
	}
	trace, err := telemetry.DecodeTrace(in)
	in.Close()
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Scenario: sc,
		Planner:  &joint.Planner{Opt: joint.Options{Parallelism: o.parallelism, ShardThreshold: o.shardThreshold}},
		Policy:   policy,
		Frontier: o.frontier,
	}
	chaos, err := faults.NewChaos(o.chaos...)
	if err != nil {
		return err
	}

	var rt *serve.Runtime
	switch {
	case o.recover:
		if o.snapshotDir == "" {
			return fmt.Errorf("-recover needs -snapshot-dir")
		}
		store, err := serve.OpenStore(o.snapshotDir)
		if err != nil {
			return err
		}
		cfg.Store = store
		if rt, err = serve.Recover(cfg); err != nil {
			return err
		}
		skip := rt.Seq()
		fmt.Printf("recovered at seq %d; replaying %d remaining samples\n", skip, max(0, len(trace)-int(skip)))
		for i := int(skip); i < len(trace); i++ {
			if _, err := rt.Ingest(trace[i]); err != nil {
				return fmt.Errorf("sample %d: %w", i, err)
			}
		}
	default:
		if o.snapshotDir != "" {
			store, err := serve.OpenStore(o.snapshotDir)
			if err != nil {
				return err
			}
			cfg.Store = store
		}
		res, err := serve.RunChaos(cfg, trace, chaos)
		if err != nil {
			return err
		}
		rt = res.Runtime
		if !chaos.Empty() {
			fmt.Printf("chaos: %d crashes, %d corrupted samples, %d rejections, %d throttle changes\n",
				res.Crashes, res.Corrupted, res.Rejections, res.Throttles)
		}
		if o.verifyRecovery {
			if err := verifyRecovery(sc, policy, o, trace, chaos, rt); err != nil {
				return err
			}
			fmt.Println("verify-recovery: journal, metrics and final plan byte-identical to the crash-free run")
		}
	}

	reg := rt.Metrics()
	count := func(name string) int64 { return reg.Counter(name).Value() }
	plan := rt.Current()
	fmt.Printf("replayed %d samples over %gs\n", len(trace), rt.Clock())
	fmt.Printf("full replans:    %d\n", count("serve.replans.full"))
	fmt.Printf("cheap refreshes: %d\n", count("serve.replans.cheap"))
	fmt.Printf("deferred:        %d\n", count("serve.replans.deferred"))
	fmt.Printf("no-change:       %d\n", count("serve.no_change"))
	if n := count("serve.replans.aborted"); n > 0 {
		fmt.Printf("deadline aborts: %d\n", n)
	}
	if n := count("serve.quarantine.quarantined"); n > 0 {
		fmt.Printf("quarantines:     %d (%d samples dropped muted)\n", n, count("serve.quarantine.dropped"))
	}
	fmt.Printf("final plan:      %s objective=%.4f feasible=%t\n", plan.PlannerName, plan.Objective, plan.Feasible)

	if o.journalPath != "" {
		text := rt.Journal().String()
		if o.journalPath == "-" {
			fmt.Print(text)
		} else if err := telemetry.WriteFileAtomic(o.journalPath, []byte(text), 0o644); err != nil {
			return err
		}
	}
	if o.expectFull >= 0 && int64(o.expectFull) != rt.FullReplans() {
		return fmt.Errorf("expected %d full replans, got %d", o.expectFull, rt.FullReplans())
	}
	if o.httpAddr != "" {
		return serveHTTP(o.httpAddr, sc, rt)
	}
	return rt.Close()
}

// verifyRecovery reruns the chaos replay with the crash events stripped
// (in memory, no store, fresh planner) and errors out unless the
// crashed-and-recovered runtime's journal, metrics and final plan match
// byte for byte.
func verifyRecovery(sc *joint.Scenario, policy serve.Policy, o replayOpts, trace []telemetry.Sample, chaos *faults.ChaosSchedule, crashed *serve.Runtime) error {
	var calmEvents []faults.ChaosEvent
	for _, e := range chaos.Events() {
		if e.Kind != faults.CrashAfterSample {
			calmEvents = append(calmEvents, e)
		}
	}
	calmChaos, err := faults.NewChaos(calmEvents...)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Scenario: sc,
		Planner:  &joint.Planner{Opt: joint.Options{Parallelism: o.parallelism, ShardThreshold: o.shardThreshold}},
		Policy:   policy,
		Frontier: o.frontier,
	}
	calm, err := serve.RunChaos(cfg, trace, calmChaos)
	if err != nil {
		return fmt.Errorf("verify-recovery: crash-free rerun: %w", err)
	}
	defer calm.Runtime.Close()
	if got, want := crashed.Journal().String(), calm.Runtime.Journal().String(); got != want {
		return fmt.Errorf("verify-recovery: journal diverged\n--- crash-free ---\n%s--- recovered ---\n%s", want, got)
	}
	if got, want := crashed.Metrics().Text(), calm.Runtime.Metrics().Text(); got != want {
		return fmt.Errorf("verify-recovery: metrics diverged\n--- crash-free ---\n%s--- recovered ---\n%s", want, got)
	}
	if got, want := serve.EncodePlan(crashed.Current()), serve.EncodePlan(calm.Runtime.Current()); got != want {
		return fmt.Errorf("verify-recovery: final plan diverged\n--- crash-free ---\n%s--- recovered ---\n%s", want, got)
	}
	return nil
}

// planSummary is the /plan endpoint's per-user view of the active plan. It
// deliberately re-shapes joint.Plan: the raw struct embeds whole model
// definitions, which no monitoring client wants.
type planSummary struct {
	Planner   string        `json:"planner"`
	Objective float64       `json:"objective"`
	Feasible  bool          `json:"feasible"`
	Users     []userSummary `json:"users"`
}

type userSummary struct {
	Name           string  `json:"name"`
	Server         int     `json:"server"` // -1 = device-only
	Partition      int     `json:"partition"`
	Exits          []int   `json:"exits,omitempty"`
	Theta          float64 `json:"theta,omitempty"`
	ComputeShare   float64 `json:"computeShare"`
	BandwidthShare float64 `json:"bandwidthShare"`
	LatencySec     float64 `json:"latencySec"`
}

func serveHTTP(addr string, sc *joint.Scenario, rt *serve.Runtime) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rt.Metrics().WriteText(w)
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, _ *http.Request) {
		plan := rt.Current()
		sum := planSummary{
			Planner:   plan.PlannerName,
			Objective: plan.Objective,
			Feasible:  plan.Feasible,
		}
		for ui := range plan.Decisions {
			d := &plan.Decisions[ui]
			sum.Users = append(sum.Users, userSummary{
				Name:           sc.Users[ui].Name,
				Server:         d.Server,
				Partition:      d.Plan.Partition,
				Exits:          d.Plan.Exits,
				Theta:          d.Plan.Theta,
				ComputeShare:   d.ComputeShare,
				BandwidthShare: d.BandwidthShare,
				LatencySec:     d.Latency(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	})
	fmt.Printf("serving /metrics and /plan on %s\n", addr)
	return http.ListenAndServe(addr, mux)
}
