// Command edgeserved is the online serving control plane around one
// deployment: it records cluster telemetry traces and replays them through
// the serve.Runtime, reporting every replan decision the hysteresis policy
// made.
//
// Usage:
//
//	edgeserved -scenario deploy.json -record trace.jsonl -horizon 240 -period 5 \
//	    -fault crash:1:60:100                 # record a telemetry trace
//	edgeserved -scenario deploy.json -trace trace.jsonl -policy hysteresis
//	edgeserved -scenario deploy.json -trace trace.jsonl -policy hysteresis \
//	    -expect-full-replans 3                # CI smoke: pin the replan count
//	edgeserved -scenario deploy.json -trace trace.jsonl -http :8080
//	    # then: curl localhost:8080/metrics ; curl localhost:8080/plan
//
// The scenario schema is documented in internal/config; the trace format is
// JSON lines, one telemetry.Sample per line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"edgesurgeon/internal/config"
	"edgesurgeon/internal/faults"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/serve"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/telemetry"
)

// faultFlags collects repeatable -fault specs of the form
// kind:server:start:end[:factor], e.g. crash:1:60:100 or brownout:0:30:90:0.5.
type faultFlags struct {
	windows []faults.Window
}

func (f *faultFlags) String() string { return fmt.Sprintf("%d faults", len(f.windows)) }

func (f *faultFlags) Set(spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) < 4 || len(parts) > 5 {
		return fmt.Errorf("want kind:server:start:end[:factor], got %q", spec)
	}
	var w faults.Window
	switch parts[0] {
	case "crash":
		w.Kind = faults.ServerCrash
	case "outage":
		w.Kind = faults.LinkOutage
	case "brownout":
		w.Kind = faults.Brownout
	default:
		return fmt.Errorf("unknown fault kind %q (crash | outage | brownout)", parts[0])
	}
	var err error
	if w.Server, err = strconv.Atoi(parts[1]); err != nil {
		return fmt.Errorf("server index %q: %w", parts[1], err)
	}
	if w.Start, err = strconv.ParseFloat(parts[2], 64); err != nil {
		return fmt.Errorf("start %q: %w", parts[2], err)
	}
	if w.End, err = strconv.ParseFloat(parts[3], 64); err != nil {
		return fmt.Errorf("end %q: %w", parts[3], err)
	}
	if len(parts) == 5 {
		if w.Factor, err = strconv.ParseFloat(parts[4], 64); err != nil {
			return fmt.Errorf("factor %q: %w", parts[4], err)
		}
	}
	if err := w.Validate(); err != nil {
		return err
	}
	f.windows = append(f.windows, w)
	return nil
}

func main() {
	var faultSpecs faultFlags
	var (
		scenarioPath = flag.String("scenario", "", "path to JSON scenario (required)")
		recordPath   = flag.String("record", "", "record a telemetry trace to this file and exit")
		horizon      = flag.Float64("horizon", 0, "recording horizon in seconds (0 = scenario horizon)")
		period       = flag.Float64("period", 5, "recording sample period in seconds")
		tracePath    = flag.String("trace", "", "replay this telemetry trace through the control plane")
		policyName   = flag.String("policy", "hysteresis", "replan policy: always | hysteresis | never")
		relChange    = flag.Float64("rel-change", -1, "override: min relative uplink drift for a full replan")
		minInterval  = flag.Float64("min-interval", -1, "override: min seconds between full replans")
		budget       = flag.Int("replan-budget", -1, "override: max full replans per trailing window")
		budgetWindow = flag.Float64("budget-window", -1, "override: trailing budget window in seconds")
		journalPath  = flag.String("journal", "", "write the replan-decision journal here (\"-\" = stdout)")
		expectFull   = flag.Int("expect-full-replans", -1, "exit non-zero unless the replay ran exactly this many full replans")
		httpAddr     = flag.String("http", "", "serve /metrics and /plan on this address after the replay")
		parallelism  = flag.Int("parallelism", 0, "planner worker count (0 = GOMAXPROCS); plans are identical across levels")
		shardThresh  = flag.Int("shard-threshold", 0, "route full replans of scenarios with at least this many users through the hierarchical sharded planner (0 = always monolithic)")
		frontier     = flag.Bool("frontier", false, "precompute Pareto-frontier surgery tables per planned scenario (see serve.frontier.* metrics); plans follow the tables' geometric share grid")
	)
	flag.Var(&faultSpecs, "fault", "fault window kind:server:start:end[:factor] (repeatable, record mode)")
	flag.Parse()

	if *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "edgeserved: -scenario required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	sc, scHorizon, err := config.Parse(data)
	if err != nil {
		fatal(err)
	}

	switch {
	case *recordPath != "":
		if err := record(sc, scHorizon, *recordPath, *horizon, *period, faultSpecs.windows); err != nil {
			fatal(err)
		}
	case *tracePath != "":
		policy, err := buildPolicy(*policyName, *relChange, *minInterval, *budget, *budgetWindow)
		if err != nil {
			fatal(err)
		}
		if err := replay(sc, policy, *tracePath, *journalPath, *expectFull, *httpAddr, *parallelism, *shardThresh, *frontier); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "edgeserved: need -record or -trace")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "edgeserved: %v\n", err)
	os.Exit(1)
}

// record samples the scenario's own links (and the optional fault windows)
// into a JSONL telemetry trace — the offline stand-in for a live cluster's
// periodic probes.
func record(sc *joint.Scenario, scHorizon float64, path string, horizon, period float64, windows []faults.Window) error {
	if horizon <= 0 {
		horizon = scHorizon
	}
	servers := make([]sim.ServerConfig, len(sc.Servers))
	for i, s := range sc.Servers {
		servers[i] = sim.ServerConfig{Profile: s.Profile, Link: s.Link}
	}
	var sched *faults.Schedule
	if len(windows) > 0 {
		var err error
		if sched, err = faults.New(windows...); err != nil {
			return err
		}
	}
	trace, err := sim.RecordTrace(servers, sched, horizon, period)
	if err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.EncodeTrace(out, trace); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d samples over %gs (period %gs, %d fault windows) to %s\n",
		len(trace), horizon, period, len(windows), path)
	return nil
}

func buildPolicy(name string, relChange, minInterval float64, budget int, window float64) (serve.Policy, error) {
	var p serve.Policy
	switch name {
	case "always":
		p = serve.AlwaysReplan()
	case "hysteresis":
		p = serve.Hysteresis()
	case "never":
		p = serve.NeverReplan()
	default:
		return p, fmt.Errorf("unknown policy %q (always | hysteresis | never)", name)
	}
	if relChange >= 0 {
		p.RelChange = relChange
	}
	if minInterval >= 0 {
		p.MinInterval = minInterval
	}
	if budget >= 0 {
		p.Budget = budget
	}
	if window >= 0 {
		p.Window = window
	}
	return p, p.Validate()
}

// replay drives the recorded trace through a fresh control plane and
// reports what the policy decided.
func replay(sc *joint.Scenario, policy serve.Policy, tracePath, journalPath string, expectFull int, httpAddr string, parallelism, shardThreshold int, frontier bool) error {
	in, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	trace, err := telemetry.DecodeTrace(in)
	in.Close()
	if err != nil {
		return err
	}
	rt, err := serve.New(serve.Config{
		Scenario: sc,
		Planner:  &joint.Planner{Opt: joint.Options{Parallelism: parallelism, ShardThreshold: shardThreshold}},
		Policy:   policy,
		Frontier: frontier,
	})
	if err != nil {
		return err
	}
	plan, err := rt.Replay(trace)
	if err != nil {
		return err
	}

	reg := rt.Metrics()
	count := func(name string) int64 { return reg.Counter(name).Value() }
	fmt.Printf("replayed %d samples over %gs\n", len(trace), rt.Clock())
	fmt.Printf("full replans:    %d\n", count("serve.replans.full"))
	fmt.Printf("cheap refreshes: %d\n", count("serve.replans.cheap"))
	fmt.Printf("deferred:        %d\n", count("serve.replans.deferred"))
	fmt.Printf("no-change:       %d\n", count("serve.no_change"))
	fmt.Printf("final plan:      %s objective=%.4f feasible=%t\n", plan.PlannerName, plan.Objective, plan.Feasible)

	if journalPath != "" {
		text := rt.Journal().String()
		if journalPath == "-" {
			fmt.Print(text)
		} else if err := os.WriteFile(journalPath, []byte(text), 0o644); err != nil {
			return err
		}
	}
	if expectFull >= 0 && int64(expectFull) != rt.FullReplans() {
		return fmt.Errorf("expected %d full replans, got %d", expectFull, rt.FullReplans())
	}
	if httpAddr != "" {
		return serveHTTP(httpAddr, sc, rt)
	}
	return nil
}

// planSummary is the /plan endpoint's per-user view of the active plan. It
// deliberately re-shapes joint.Plan: the raw struct embeds whole model
// definitions, which no monitoring client wants.
type planSummary struct {
	Planner   string        `json:"planner"`
	Objective float64       `json:"objective"`
	Feasible  bool          `json:"feasible"`
	Users     []userSummary `json:"users"`
}

type userSummary struct {
	Name           string  `json:"name"`
	Server         int     `json:"server"` // -1 = device-only
	Partition      int     `json:"partition"`
	Exits          []int   `json:"exits,omitempty"`
	Theta          float64 `json:"theta,omitempty"`
	ComputeShare   float64 `json:"computeShare"`
	BandwidthShare float64 `json:"bandwidthShare"`
	LatencySec     float64 `json:"latencySec"`
}

func serveHTTP(addr string, sc *joint.Scenario, rt *serve.Runtime) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rt.Metrics().WriteText(w)
	})
	mux.HandleFunc("/plan", func(w http.ResponseWriter, _ *http.Request) {
		plan := rt.Current()
		sum := planSummary{
			Planner:   plan.PlannerName,
			Objective: plan.Objective,
			Feasible:  plan.Feasible,
		}
		for ui := range plan.Decisions {
			d := &plan.Decisions[ui]
			sum.Users = append(sum.Users, userSummary{
				Name:           sc.Users[ui].Name,
				Server:         d.Server,
				Partition:      d.Plan.Partition,
				Exits:          d.Plan.Exits,
				Theta:          d.Plan.Theta,
				ComputeShare:   d.ComputeShare,
				BandwidthShare: d.BandwidthShare,
				LatencySec:     d.Latency(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
	})
	fmt.Printf("serving /metrics and /plan on %s\n", addr)
	return http.ListenAndServe(addr, mux)
}
