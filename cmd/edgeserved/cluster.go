package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"edgesurgeon/internal/cluster"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/serve"
)

// clusterOpts bundles the live-cluster (-listen) mode configuration.
type clusterOpts struct {
	listen          string
	agents          int
	agentBin        string
	requests        int
	workers         int
	timeScale       float64
	telemetryPeriod float64
	minOKFrac       float64
	frontier        bool
	seed            int64
	stallClients    int
	httpAddr        string
}

// runCluster boots the networked data plane for real: the wire dispatcher
// in-process on the listen address, one edgeagent child per edge server,
// telemetry flowing into the serve runtime under the chosen policy. With
// -requests > 0 it then drives a bounded closed-loop workload and gates the
// exit code on the ok-fraction — the `make cluster-smoke` CI mode. With
// -requests 0 it serves until interrupted, for manual clients.
func runCluster(sc *joint.Scenario, scenarioJSON []byte, policy serve.Policy, o clusterOpts) error {
	c, err := cluster.Start(cluster.Config{
		ScenarioJSON:    scenarioJSON,
		Agents:          o.agents,
		AgentBin:        o.agentBin,
		Listen:          o.listen,
		Policy:          policy,
		Frontier:        o.frontier,
		TimeScale:       o.timeScale,
		TelemetryPeriod: o.telemetryPeriod,
		Seed:            o.seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "edgeserved: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("cluster up: dispatcher at %s, %d servers, %d users\n",
		c.Addr(), len(sc.Servers), len(sc.Users))

	if o.httpAddr != "" {
		go func() {
			if err := serveHTTP(o.httpAddr, sc, c.Runtime); err != nil {
				fmt.Fprintf(os.Stderr, "edgeserved: http: %v\n", err)
			}
		}()
	}

	// Optional backpressure arm: stalled clients that handshake, fire a
	// request burst, and never read a response. The dispatcher must shed
	// their queued responses and eventually drop them without denting the
	// healthy drive below.
	for i := 0; i < o.stallClients; i++ {
		burst := o.requests
		if burst <= 0 {
			burst = 64
		}
		s, err := cluster.StartStalledClient(c.Addr(), burst, len(sc.Users))
		if err != nil {
			return fmt.Errorf("stalled client %d: %w", i, err)
		}
		defer s.Close()
	}

	if o.requests <= 0 {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Println("shutting down")
		return nil
	}

	res, err := cluster.Drive(c.Addr(), len(sc.Users), cluster.DriveConfig{
		Requests: o.requests, Workers: o.workers,
	})
	if err != nil {
		return err
	}
	okFrac := 0.0
	if res.Sent > 0 {
		okFrac = float64(res.OK) / float64(res.Sent)
	}
	reg := c.Runtime.Metrics()
	fmt.Printf("drive: %d sent, %d ok (%.1f%%), %d crossed agents, %.0f req/s wall\n",
		res.Sent, res.OK, 100*okFrac, res.Crossed, res.RPS)
	fmt.Printf("latency: p50 %.1f ms, p99 %.1f ms (model time)\n",
		res.P50/o.timeScale*1e3, res.P99/o.timeScale*1e3)
	fmt.Printf("control plane: %d full replans, %d alloc pushes, %d telemetry coalesced\n",
		c.Runtime.FullReplans(),
		reg.Counter("dataplane.alloc_pushes").Value(),
		reg.Counter("dataplane.telemetry_coalesced").Value())
	if o.stallClients > 0 {
		fmt.Printf("backpressure: %d responses shed, %d deadline trips, %d clients dropped\n",
			reg.Counter("dataplane.client_shed").Value(),
			reg.Counter("dataplane.write_deadline_trips").Value(),
			reg.Counter("dataplane.clients_dropped").Value())
	}
	if res.Crossed == 0 {
		return fmt.Errorf("no request crossed to an agent; the handoff path never ran")
	}
	if okFrac < o.minOKFrac {
		return fmt.Errorf("ok fraction %.3f below required %.3f", okFrac, o.minOKFrac)
	}
	return nil
}
