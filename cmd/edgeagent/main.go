// Command edgeagent runs one edge-server agent of the networked data
// plane: it parses the shared scenario, dials the dispatcher
// (cmd/edgeserved -listen), registers for its server index, and then
// executes pushed allocations — suffix inference under GPU-share
// scheduling, telemetry streaming — until the dispatcher goes away.
//
// Usage:
//
//	edgeagent -scenario cluster.json -server 0 -dispatcher 127.0.0.1:7701
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"edgesurgeon/internal/agent"
	"edgesurgeon/internal/config"
)

func main() {
	var (
		scenarioPath    = flag.String("scenario", "", "path to the shared JSON scenario (required)")
		server          = flag.Int("server", -1, "edge-server index this agent serves (required)")
		dispatcher      = flag.String("dispatcher", "", "dispatcher address host:port (required)")
		id              = flag.String("id", "", "agent ID (default: canonical sNN source ID)")
		timeScale       = flag.Float64("timescale", 1, "wall-seconds per model-second")
		telemetryPeriod = flag.Float64("telemetry-period", 2, "model-seconds between telemetry samples")
		quiet           = flag.Bool("quiet", false, "suppress lifecycle logging")
	)
	flag.Parse()
	if err := run(*scenarioPath, *server, *dispatcher, *id, *timeScale, *telemetryPeriod, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "edgeagent:", err)
		os.Exit(1)
	}
}

func run(scenarioPath string, server int, dispatcher, id string, timeScale, telemetryPeriod float64, quiet bool) error {
	if scenarioPath == "" || server < 0 || dispatcher == "" {
		return fmt.Errorf("-scenario, -server and -dispatcher are required")
	}
	data, err := os.ReadFile(scenarioPath)
	if err != nil {
		return err
	}
	sc, _, err := config.Parse(data)
	if err != nil {
		return err
	}
	logf := log.Printf
	if quiet {
		logf = func(string, ...any) {}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return agent.Run(ctx, agent.Config{
		Scenario:        sc,
		Server:          server,
		ID:              id,
		Dispatcher:      dispatcher,
		TimeScale:       timeScale,
		TelemetryPeriod: telemetryPeriod,
		Logf:            logf,
	})
}
