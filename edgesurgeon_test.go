package edgesurgeon_test

import (
	"fmt"
	"testing"
	"time"

	"edgesurgeon"
)

func publicScenario(t testing.TB) *edgesurgeon.Scenario {
	if t != nil {
		t.Helper()
	}
	return &edgesurgeon.Scenario{
		Servers: []edgesurgeon.Server{{
			Name:    "edge-gpu",
			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
			Link:    edgesurgeon.StaticLink("wifi", edgesurgeon.Mbps(40), 4*time.Millisecond),
			RTT:     0.004,
		}},
		Users: []edgesurgeon.User{
			{
				Name: "camera-1", Model: edgesurgeon.MustModel("resnet18"),
				Device: edgesurgeon.MustHardware("rpi4"),
				Rate:   3, Deadline: 0.3,
				Difficulty: edgesurgeon.EasyBiased, Arrivals: edgesurgeon.Poisson, Seed: 1,
			},
			{
				Name: "camera-2", Model: edgesurgeon.MustModel("mobilenetv2"),
				Device: edgesurgeon.MustHardware("phone-soc"),
				Rate:   8, Deadline: 0.15,
				Difficulty: edgesurgeon.EasyBiased, Arrivals: edgesurgeon.Poisson, Seed: 2,
			},
		},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sc := publicScenario(t)
	plan, res, err := edgesurgeon.PlanAndSimulate(sc, edgesurgeon.NewPlanner(), 30, edgesurgeon.DedicatedShares)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(plan.Decisions))
	}
	if len(res.Records) == 0 {
		t.Fatal("no simulated tasks")
	}
	if res.DeadlineRate() < 0.8 {
		t.Errorf("deadline rate %.3f suspiciously low for an easy scenario", res.DeadlineRate())
	}
	if res.MeanDeviceEnergy() <= 0 {
		t.Error("no energy accounting")
	}
}

func TestPublicBaselines(t *testing.T) {
	sc := publicScenario(t)
	jp, err := edgesurgeon.NewPlanner().Plan(sc)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range edgesurgeon.Baselines() {
		bp, err := s.Plan(sc)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if names[s.Name()] {
			t.Errorf("duplicate baseline name %q", s.Name())
		}
		names[s.Name()] = true
		if jp.Objective > bp.Objective*1.001 {
			t.Errorf("joint %.5g worse than %s %.5g", jp.Objective, s.Name(), bp.Objective)
		}
	}
	if len(names) != 5 {
		t.Errorf("baseline count = %d", len(names))
	}
}

func TestPublicSurgery(t *testing.T) {
	m := edgesurgeon.MustModel("vgg16")
	env := edgesurgeon.SurgeryEnv{
		Device:       edgesurgeon.MustHardware("rpi4"),
		Server:       edgesurgeon.MustHardware("edge-gpu-t4"),
		ComputeShare: 1, UplinkBps: edgesurgeon.Mbps(20), BandwidthShare: 1,
		RTT: 0.004, Difficulty: edgesurgeon.EasyBiased,
	}
	plan, ev, err := edgesurgeon.OptimizeSurgery(m, env, edgesurgeon.SurgeryOptions{
		FixedPartition: edgesurgeon.FreePartition, MinAccuracy: 0.70,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.70 {
		t.Errorf("accuracy %.3f below floor", ev.Accuracy)
	}
	if ev.Latency <= 0 {
		t.Errorf("latency %g", ev.Latency)
	}
	if err := plan.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPublicCatalogs(t *testing.T) {
	if len(edgesurgeon.Zoo()) != 8 {
		t.Errorf("zoo size = %d, want 8", len(edgesurgeon.Zoo()))
	}
	if len(edgesurgeon.Hardware()) != 6 {
		t.Errorf("hardware size = %d, want 6", len(edgesurgeon.Hardware()))
	}
	for _, name := range edgesurgeon.Models() {
		if _, err := edgesurgeon.ModelByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := edgesurgeon.ModelByName("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
	if _, err := edgesurgeon.HardwareByName("nope"); err == nil {
		t.Error("expected error for unknown hardware")
	}
}

func TestPublicDispatcher(t *testing.T) {
	sc := publicScenario(t)
	disp, err := edgesurgeon.NewDispatcher(sc, edgesurgeon.NewPlanner())
	if err != nil {
		t.Fatal(err)
	}
	if disp.Current() == nil {
		t.Fatal("no initial plan")
	}
	p, err := disp.ObserveUplinks([]float64{edgesurgeon.Mbps(2)})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(p.Decisions))
	}
}

func TestPublicFadingLink(t *testing.T) {
	link, err := edgesurgeon.FadingLink("wlan",
		[]float64{edgesurgeon.Mbps(2), edgesurgeon.Mbps(30)},
		5*time.Second, 10*time.Minute, 4*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	if link.RateAt(0) <= 0 {
		t.Error("no rate at t=0")
	}
}

// ExampleNewPlanner demonstrates the minimal planning flow.
func ExampleNewPlanner() {
	sc := &edgesurgeon.Scenario{
		Servers: []edgesurgeon.Server{{
			Name:    "edge-gpu",
			Profile: edgesurgeon.MustHardware("edge-gpu-t4"),
			Link:    edgesurgeon.StaticLink("wifi", edgesurgeon.Mbps(40), 4*time.Millisecond),
			RTT:     0.004,
		}},
		Users: []edgesurgeon.User{{
			Name:   "camera-1",
			Model:  edgesurgeon.MustModel("resnet18"),
			Device: edgesurgeon.MustHardware("rpi4"),
			Rate:   3, Deadline: 0.3, Seed: 1,
		}},
	}
	plan, err := edgesurgeon.NewPlanner().Plan(sc)
	if err != nil {
		panic(err)
	}
	d := plan.Decisions[0]
	fmt.Println("decisions:", len(plan.Decisions))
	fmt.Println("offloads:", d.Plan.Partition < d.Plan.Model.NumUnits())
	fmt.Println("meets deadline:", d.Latency() <= 0.3)
	// Output:
	// decisions: 1
	// offloads: true
	// meets deadline: true
}

// ExampleOptimizeSurgery demonstrates single-user model surgery.
func ExampleOptimizeSurgery() {
	env := edgesurgeon.SurgeryEnv{
		Device:       edgesurgeon.MustHardware("rpi4"),
		Server:       edgesurgeon.MustHardware("edge-gpu-t4"),
		ComputeShare: 1, UplinkBps: edgesurgeon.Mbps(20), BandwidthShare: 1,
		RTT: 0.004, Difficulty: edgesurgeon.EasyBiased,
	}
	plan, ev, err := edgesurgeon.OptimizeSurgery(
		edgesurgeon.MustModel("vgg16"), env,
		edgesurgeon.SurgeryOptions{FixedPartition: edgesurgeon.FreePartition, MinAccuracy: 0.72},
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("has exits:", len(plan.Exits) > 0)
	fmt.Println("accuracy floor met:", ev.Accuracy >= 0.72)
	// Output:
	// has exits: true
	// accuracy floor met: true
}
