// Benchmarks regenerating every evaluation artifact (one benchmark per
// table/figure, BenchmarkE1..BenchmarkE21) plus microbenchmarks for the
// performance-critical kernels: the surgery DP, the allocation water-fill,
// the simulator event loop and the nn matmul.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one figure's data:
//
//	go test -bench=BenchmarkE4 -benchtime=1x
package edgesurgeon

import (
	"fmt"
	"math/rand"
	"testing"

	"edgesurgeon/internal/alloc"
	"edgesurgeon/internal/dnn"
	"edgesurgeon/internal/experiments"
	"edgesurgeon/internal/hardware"
	"edgesurgeon/internal/joint"
	"edgesurgeon/internal/netmodel"
	"edgesurgeon/internal/nn"
	"edgesurgeon/internal/sim"
	"edgesurgeon/internal/surgery"
	"edgesurgeon/internal/workload"
)

// benchExperiment runs one experiment per iteration; the regenerated tables
// are the artifact, the benchmark time is the cost of regenerating them.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := runner(); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// Table 1: model zoo characteristics.
func BenchmarkE1ModelZoo(b *testing.B) { benchExperiment(b, "E1") }

// Table 2: per-model latency across hardware classes.
func BenchmarkE2HardwareProfile(b *testing.B) { benchExperiment(b, "E2") }

// Figure 3: latency vs uplink bandwidth.
func BenchmarkE3BandwidthSweep(b *testing.B) { benchExperiment(b, "E3") }

// Figure 4: latency vs number of users.
func BenchmarkE4UserScaling(b *testing.B) { benchExperiment(b, "E4") }

// Figure 5: deadline satisfaction vs arrival rate.
func BenchmarkE5DeadlineVsRate(b *testing.B) { benchExperiment(b, "E5") }

// Figure 6: accuracy-latency frontier.
func BenchmarkE6AccuracyLatency(b *testing.B) { benchExperiment(b, "E6") }

// Figure 7: joint vs single-axis ablations.
func BenchmarkE7Ablation(b *testing.B) { benchExperiment(b, "E7") }

// Figure 8: heterogeneity sensitivity.
func BenchmarkE8Heterogeneity(b *testing.B) { benchExperiment(b, "E8") }

// Figure 9: planner runtime scalability.
func BenchmarkE9PlannerScalability(b *testing.B) { benchExperiment(b, "E9") }

// Figure 10: block-coordinate convergence.
func BenchmarkE10Convergence(b *testing.B) { benchExperiment(b, "E10") }

// Table 3: optimality gap vs exhaustive assignment.
func BenchmarkE11OptimalityGap(b *testing.B) { benchExperiment(b, "E11") }

// Figure 11: measured multi-exit behaviour of a trained network.
func BenchmarkE12RealMultiExit(b *testing.B) { benchExperiment(b, "E12") }

// Figure 12: online adaptation under fading bandwidth.
func BenchmarkE13OnlineAdaptation(b *testing.B) { benchExperiment(b, "E13") }

// Figure 13 (extension): device energy per task by strategy.
func BenchmarkE14DeviceEnergy(b *testing.B) { benchExperiment(b, "E14") }

// Figure 14 (extension): activation compression before transfer.
func BenchmarkE15Compression(b *testing.B) { benchExperiment(b, "E15") }

// Figure 15 (extension): offload-probe ablation.
func BenchmarkE16ProbeAblation(b *testing.B) { benchExperiment(b, "E16") }

// Figure 16 (extension): priority-weight service differentiation.
func BenchmarkE17PriorityWeights(b *testing.B) { benchExperiment(b, "E17") }

// Figure 17 (extension): service-discipline sensitivity.
func BenchmarkE18DisciplineSensitivity(b *testing.B) { benchExperiment(b, "E18") }

// Table 4 (extension): max sustainable throughput at 90% satisfaction.
func BenchmarkE19SaturationThroughput(b *testing.B) { benchExperiment(b, "E19") }

// Figure 18 (extension): availability under server/link failures.
func BenchmarkE20AvailabilityUnderFailures(b *testing.B) { benchExperiment(b, "E20") }

// Scale study (extension): sharded-simulator throughput at 10k-100k users.
func BenchmarkE21ScaleThroughput(b *testing.B) { benchExperiment(b, "E21") }

// --- microbenchmarks -----------------------------------------------------

func benchEnv(b *testing.B) surgery.Env {
	b.Helper()
	dev, err := hardware.ByName("rpi4")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := hardware.ByName("edge-gpu-t4")
	if err != nil {
		b.Fatal(err)
	}
	return surgery.Env{
		Device: dev, Server: srv,
		ComputeShare: 0.5, UplinkBps: netmodel.Mbps(25), BandwidthShare: 0.5,
		RTT: 0.004, Difficulty: workload.EasyBiased,
	}
}

// BenchmarkSurgeryOptimize measures one full per-user surgery optimization
// (the inner kernel of the planner's surgery step) on ResNet34, the model
// with the most exit candidates.
func BenchmarkSurgeryOptimize(b *testing.B) {
	env := benchEnv(b)
	m := dnn.ResNet34()
	opt := surgery.Options{FixedPartition: surgery.FreePartition}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := surgery.Optimize(m, env, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSurgeryOptimizeConstrained adds the accuracy-constrained DP.
func BenchmarkSurgeryOptimizeConstrained(b *testing.B) {
	env := benchEnv(b)
	m := dnn.ResNet34()
	opt := surgery.Options{FixedPartition: surgery.FreePartition, MinAccuracy: 0.72}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := surgery.Optimize(m, env, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontierLookup measures one precomputed frontier-table lookup —
// the operation that replaces BenchmarkSurgeryOptimize in the planner's
// frontier-path hot loop. Table construction happens before the timer, as
// it does in production (once per scenario, amortized over every lookup).
func BenchmarkFrontierLookup(b *testing.B) {
	env := benchEnv(b)
	m := dnn.ResNet34()
	opt := surgery.Options{FixedPartition: surgery.FreePartition}
	table, err := surgery.BuildFrontier(surgery.KeyOf(m, env, opt), surgery.BuildOptions{Surgery: opt})
	if err != nil {
		b.Fatal(err)
	}
	grid := table.Grid()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := grid.Value(i % grid.Levels())
		bw := grid.Value((i * 7) % grid.Levels())
		if plan, _ := table.Lookup(f, bw); plan.Model == nil {
			b.Fatal("empty frontier lookup")
		}
	}
}

// BenchmarkSurgeryEvaluate measures a single plan evaluation.
func BenchmarkSurgeryEvaluate(b *testing.B) {
	env := benchEnv(b)
	m := dnn.ResNet34()
	cand := m.ExitCandidates()
	plan := surgery.Plan{Model: m, Exits: cand[2:6], Theta: 0.2, Partition: 9}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := surgery.Evaluate(plan, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocDeadlineAware measures the per-server allocation kernel at
// a realistic fan-in of 32 users.
func BenchmarkAllocDeadlineAware(b *testing.B) {
	demands := make([]alloc.Demand, 32)
	for i := range demands {
		demands[i] = alloc.Demand{
			Fixed:    0.01 + float64(i%5)*0.002,
			Server:   0.002 + float64(i%7)*0.001,
			Tx:       0.001 + float64(i%3)*0.002,
			Deadline: 0.3,
			Rate:     2,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc.DeadlineAware(demands)
	}
}

// BenchmarkJointPlan measures full planning of a 16-user scenario.
func BenchmarkJointPlan(b *testing.B) {
	sc := benchScenario(b, 16)
	planner := &joint.Planner{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointPlanFrontier is BenchmarkJointPlan with the planner's inner
// loop answered by precomputed Pareto-frontier tables. The table set is
// built before the timer (once per scenario in production); the measured
// loop is planning alone, for a direct comparison against BenchmarkJointPlan.
func BenchmarkJointPlanFrontier(b *testing.B) {
	sc := benchScenario(b, 16)
	set, err := joint.BuildFrontierSet(sc, joint.Options{}, surgery.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	planner := &joint.Planner{Opt: joint.Options{Frontiers: set}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointPlanFrontierNoMemo ablates the per-(user, server) key→table
// resolution memo from BenchmarkJointPlanFrontier: every lookup constructs
// and hashes a full FrontierKey. The delta against BenchmarkJointPlanFrontier
// is exactly what the memo saves; plans and hit/miss tallies are pinned
// identical by TestFrontierMemoEquivalence.
func BenchmarkJointPlanFrontierNoMemo(b *testing.B) {
	sc := benchScenario(b, 16)
	set, err := joint.BuildFrontierSet(sc, joint.Options{}, surgery.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	planner := &joint.Planner{Opt: joint.Options{Frontiers: set, DisableFrontierMemo: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJointPlanParallel sweeps the planner's worker-pool size at two
// population scales. Plans are byte-identical across workers (the planner's
// determinism contract), so the sweep isolates pure wall-clock scaling; the
// surgery memoization cache is active in all arms, as in production.
func BenchmarkJointPlanParallel(b *testing.B) {
	for _, users := range []int{32, 128} {
		sc := benchScenario(b, users)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("users=%d/workers=%d", users, workers), func(b *testing.B) {
				planner := &joint.Planner{Opt: joint.Options{Parallelism: workers}}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := planner.Plan(sc); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkJointPlanUncached isolates what the surgery memoization saves:
// the same 32-user scenario as BenchmarkJointPlanParallel with the cache
// ablated at one worker.
func BenchmarkJointPlanUncached(b *testing.B) {
	sc := benchScenario(b, 32)
	planner := &joint.Planner{Opt: joint.Options{Parallelism: 1, DisableSurgeryCache: true}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := planner.Plan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScenario(b *testing.B, n int) *joint.Scenario {
	b.Helper()
	pi, _ := hardware.ByName("rpi4")
	phone, _ := hardware.ByName("phone-soc")
	gpu, _ := hardware.ByName("edge-gpu-t4")
	cpu, _ := hardware.ByName("edge-cpu-16c")
	sc := &joint.Scenario{
		Servers: []joint.Server{
			{Name: "g", Profile: gpu, Link: netmodel.NewStatic("a", netmodel.Mbps(40), 0.004), RTT: 0.004},
			{Name: "c", Profile: cpu, Link: netmodel.NewStatic("b", netmodel.Mbps(25), 0.006), RTT: 0.006},
		},
	}
	models := []*dnn.Model{dnn.ResNet18(), dnn.AlexNet(), dnn.MobileNetV2()}
	devs := []*hardware.Profile{pi, phone}
	for i := 0; i < n; i++ {
		sc.Users = append(sc.Users, joint.User{
			Name: "u", Model: models[i%3], Device: devs[i%2],
			Rate: 2, Deadline: 0.3, Difficulty: workload.EasyBiased,
			Arrivals: workload.Poisson, Seed: int64(i),
		})
	}
	return sc
}

// BenchmarkSimulator measures the event-loop throughput: tasks/op with
// queueing, transfers and early exits.
func BenchmarkSimulator(b *testing.B) {
	sc := benchScenario(b, 8)
	plan, err := (&joint.Planner{}).Plan(sc)
	if err != nil {
		b.Fatal(err)
	}
	cfg := joint.BuildSimConfig(sc, plan, 30, sim.DedicatedShares)
	var tasks int
	for _, u := range cfg.Users {
		tasks += len(u.Tasks)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tasks), "tasks/op")
}

// BenchmarkTransferTime measures rate-trace integration across a fading
// link.
func BenchmarkTransferTime(b *testing.B) {
	link, err := netmodel.NewFading("wlan", netmodel.FadingConfig{
		States: []float64{netmodel.Mbps(2), netmodel.Mbps(40)}, MeanDwell: 2,
		Horizon: 3600, RTT: 0.004, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netmodel.TransferTime(link, 600_000, float64(i%3000), 0.5)
	}
}

// BenchmarkNNMatMul measures the parallel matmul kernel (128x256 * 256x128).
func BenchmarkNNMatMul(b *testing.B) {
	a := nn.NewMatrix(128, 256)
	c := nn.NewMatrix(256, 128)
	for i := range a.Data {
		a.Data[i] = float64(i%17) * 0.1
	}
	for i := range c.Data {
		c.Data[i] = float64(i%13) * 0.1
	}
	dst := nn.NewMatrix(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.MatMul(dst, a, c)
	}
	b.SetBytes(int64(128 * 256 * 128 * 8))
}

// BenchmarkNNTrainEpoch measures one training epoch of the multi-exit MLP.
func BenchmarkNNTrainEpoch(b *testing.B) {
	ds, err := nn.GaussianMixture(nn.GaussianMixtureConfig{
		Samples: 2000, Features: 16, Classes: 5, Radius: 4, NoiseLo: 0.5, NoiseHi: 2, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	net, err := nn.NewMultiExit(nn.Config{In: 16, Hidden: []int{32, 32, 32}, Exits: []int{0, 1}, Classes: 5, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.TrainEpoch(ds, 32, 0.05, 0.9, rng)
	}
}

// BenchmarkEndToEnd measures plan + simulate of a 12-user scenario over a
// 30-second horizon — the full pipeline a deployment would run.
func BenchmarkEndToEnd(b *testing.B) {
	sc := benchScenario(b, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := joint.PlanAndSimulate(sc, &joint.Planner{}, 30, sim.DedicatedShares); err != nil {
			b.Fatal(err)
		}
	}
}
